//! Epoch / lock-discipline checker: validates MPI-3 passive-target
//! rules over one window's access log.
//!
//! Rules enforced (each maps to a [`ViolationKind`]):
//!
//! * every get/put/atomic/flush happens inside an access epoch covering
//!   its target (`lock(target)` or `lock_all`);
//! * no nested or mismatched lock/unlock, `unlock_all` pairs with
//!   `lock_all`, nothing left locked when the log ends;
//! * exclusive-lock mutual exclusion actually held: the
//!   `[Lock.seq, Unlock.seq]` intervals (stamped after-grant /
//!   before-release by `mpisim`) of epochs involving an exclusive lock
//!   on one target never overlap across ranks;
//! * on shared-memory windows, a read of a slot another rank has put to
//!   must be preceded (on the reading rank) by `MPI_Win_sync` or a
//!   barrier issued after that put — the unified-model visibility rule
//!   the paper's local-queue protocol depends on. Atomics are exempt
//!   (MPI guarantees their coherence) but count as writes.

use crate::report::{Violation, ViolationKind};
use mpisim::{LockKind, RmaEvent, RmaRecord};
use std::collections::HashMap;

#[derive(Default)]
struct RankEpochs {
    /// Open per-target epochs of this origin.
    held: HashMap<u32, LockKind>,
    /// An open `lock_all` epoch.
    lock_all: bool,
    /// Sequence of this rank's latest `sync` or barrier.
    last_sync: u64,
    /// Whether a `sync`/barrier happened at all yet.
    synced: bool,
}

/// Run the discipline rules over one window's records (must all carry
/// the same `win` and be sorted by `seq`), appending violations.
pub fn check_epochs(records: &[RmaRecord], out: &mut Vec<Violation>) {
    let mut shared = false;
    let mut comm_size = 0u32;
    let mut ranks: HashMap<u32, RankEpochs> = HashMap::new();
    // target -> (rank -> kind) of epochs currently open, for the
    // cross-rank exclusive-overlap rule.
    let mut holders: HashMap<u32, HashMap<u32, LockKind>> = HashMap::new();
    // slot -> (seq, rank) of the latest write, for the missing-sync rule.
    let mut last_put: HashMap<(u32, usize), (u64, u32)> = HashMap::new();

    let mut push = |kind: ViolationKind, r: &RmaRecord, detail: String| {
        out.push(Violation { kind, win: r.win, rank: r.rank, seq: r.seq, detail });
    };

    for r in records {
        let me = ranks.entry(r.rank).or_default();
        match r.event {
            RmaEvent::Attach { shared: s, comm_size: n } => {
                shared |= s;
                comm_size = comm_size.max(n);
            }
            RmaEvent::Lock { kind, target } => {
                comm_size = comm_size.max(target + 1);
                if me.lock_all {
                    push(
                        ViolationKind::NestedLock,
                        r,
                        format!("lock({kind:?}, {target}) inside an open lock_all epoch"),
                    );
                } else if let Some(prev) = me.held.get(&target) {
                    push(
                        ViolationKind::NestedLock,
                        r,
                        format!("lock({kind:?}, {target}) while already holding {prev:?}"),
                    );
                }
                me.held.insert(target, kind);
                let h = holders.entry(target).or_default();
                for (&other, &okind) in h.iter() {
                    if other != r.rank
                        && (kind == LockKind::Exclusive || okind == LockKind::Exclusive)
                    {
                        push(
                            ViolationKind::ExclusiveOverlap,
                            r,
                            format!(
                                "lock({kind:?}, {target}) granted while rank {other} \
                                 holds {okind:?} on the same target"
                            ),
                        );
                    }
                }
                h.insert(r.rank, kind);
            }
            RmaEvent::Unlock { kind, target } => {
                if me.lock_all {
                    push(
                        ViolationKind::UnlockWithoutLock,
                        r,
                        format!("unlock({kind:?}, {target}) inside a lock_all epoch"),
                    );
                } else {
                    match me.held.remove(&target) {
                        None => push(
                            ViolationKind::UnlockWithoutLock,
                            r,
                            format!("unlock({kind:?}, {target}) with no open epoch on target"),
                        ),
                        Some(h) if h != kind => push(
                            ViolationKind::MismatchedUnlock,
                            r,
                            format!("unlock({kind:?}, {target}) closes a {h:?} epoch"),
                        ),
                        Some(_) => {}
                    }
                }
                if let Some(h) = holders.get_mut(&target) {
                    h.remove(&r.rank);
                }
            }
            RmaEvent::LockAll => {
                if me.lock_all || !me.held.is_empty() {
                    push(
                        ViolationKind::NestedLock,
                        r,
                        "lock_all while already holding window locks".to_string(),
                    );
                }
                me.lock_all = true;
                for target in 0..comm_size {
                    let h = holders.entry(target).or_default();
                    for (&other, &okind) in h.iter() {
                        if other != r.rank && okind == LockKind::Exclusive {
                            push(
                                ViolationKind::ExclusiveOverlap,
                                r,
                                format!(
                                    "lock_all granted while rank {other} holds \
                                     Exclusive on target {target}"
                                ),
                            );
                        }
                    }
                    h.insert(r.rank, LockKind::Shared);
                }
            }
            RmaEvent::UnlockAll => {
                if !me.lock_all {
                    push(
                        ViolationKind::UnlockAllWithoutLockAll,
                        r,
                        "unlock_all with no open lock_all epoch".to_string(),
                    );
                }
                me.lock_all = false;
                for h in holders.values_mut() {
                    // Only the lock_all hold: per-target epochs (which
                    // would themselves be a NestedLock) stay visible.
                    if me.held.is_empty() {
                        h.remove(&r.rank);
                    }
                }
            }
            RmaEvent::Sync | RmaEvent::Barrier => {
                me.last_sync = r.seq;
                me.synced = true;
            }
            RmaEvent::Flush { target } => {
                if !me.lock_all && !me.held.contains_key(&target) {
                    push(
                        ViolationKind::AccessOutsideEpoch,
                        r,
                        format!("flush({target}) outside any access epoch"),
                    );
                }
            }
            RmaEvent::Get { target, disp, len } => {
                if !me.lock_all && !me.held.contains_key(&target) {
                    push(
                        ViolationKind::AccessOutsideEpoch,
                        r,
                        format!("get(target {target}, disp {disp}, len {len}) outside any epoch"),
                    );
                }
                if shared {
                    let stale = (disp..disp + len).find_map(|d| {
                        last_put.get(&(target, d)).and_then(|&(wseq, wrank)| {
                            let unsynced = !me.synced || me.last_sync < wseq;
                            (wrank != r.rank && unsynced).then_some((d, wseq, wrank))
                        })
                    });
                    if let Some((d, wseq, wrank)) = stale {
                        push(
                            ViolationKind::MissingSync,
                            r,
                            format!(
                                "shared-window get of (target {target}, disp {d}) observes \
                                 rank {wrank}'s put @ seq {wseq} with no MPI_Win_sync since"
                            ),
                        );
                    }
                }
            }
            RmaEvent::Put { target, disp, len } => {
                if !me.lock_all && !me.held.contains_key(&target) {
                    push(
                        ViolationKind::AccessOutsideEpoch,
                        r,
                        format!("put(target {target}, disp {disp}, len {len}) outside any epoch"),
                    );
                }
                for d in disp..disp + len {
                    last_put.insert((target, d), (r.seq, r.rank));
                }
            }
            RmaEvent::Atomic { target, disp, op } => {
                if !me.lock_all && !me.held.contains_key(&target) {
                    push(
                        ViolationKind::AccessOutsideEpoch,
                        r,
                        format!("{op:?}(target {target}, disp {disp}) outside any epoch"),
                    );
                }
                // Atomics are coherent on their own but still publish a
                // value later plain reads must sync for.
                last_put.insert((target, disp), (r.seq, r.rank));
            }
        }
    }

    for (&rank, st) in &ranks {
        if st.lock_all || !st.held.is_empty() {
            let mut targets: Vec<u32> = st.held.keys().copied().collect();
            targets.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::EpochLeak,
                win: records.first().map(|r| r.win).unwrap_or(0),
                rank,
                seq: records.last().map(|r| r.seq).unwrap_or(0),
                detail: if st.lock_all {
                    "lock_all epoch still open at end of log".to_string()
                } else {
                    format!("locks on targets {targets:?} still open at end of log")
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{AtomicOpKind, RmaLog};

    fn check(log: &RmaLog) -> Vec<Violation> {
        let mut out = Vec::new();
        check_epochs(&log.records(), &mut out);
        out
    }

    fn attach(log: &RmaLog, ranks: u32, shared: bool) {
        for r in 0..ranks {
            log.push(0, r, RmaEvent::Attach { shared, comm_size: ranks });
        }
    }

    #[test]
    fn disciplined_epoch_is_clean() {
        let log = RmaLog::new();
        attach(&log, 2, true);
        for rank in 0..2 {
            log.push(0, rank, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
            log.push(0, rank, RmaEvent::Sync);
            log.push(0, rank, RmaEvent::Get { target: 0, disp: 0, len: 1 });
            log.push(0, rank, RmaEvent::Put { target: 0, disp: 0, len: 1 });
            log.push(0, rank, RmaEvent::Sync);
            log.push(0, rank, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        }
        assert!(check(&log).is_empty());
    }

    #[test]
    fn access_outside_epoch_flagged() {
        let log = RmaLog::new();
        attach(&log, 1, false);
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::AccessOutsideEpoch);
    }

    #[test]
    fn atomic_outside_epoch_flagged() {
        let log = RmaLog::new();
        attach(&log, 1, false);
        log.push(0, 0, RmaEvent::Atomic { target: 0, disp: 0, op: AtomicOpKind::FetchAndOp });
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::AccessOutsideEpoch);
    }

    #[test]
    fn lock_all_covers_every_target() {
        let log = RmaLog::new();
        attach(&log, 3, false);
        log.push(0, 1, RmaEvent::LockAll);
        log.push(0, 1, RmaEvent::Atomic { target: 0, disp: 0, op: AtomicOpKind::FetchAndOp });
        log.push(0, 1, RmaEvent::Get { target: 2, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::UnlockAll);
        assert!(check(&log).is_empty());
    }

    #[test]
    fn nested_lock_and_leak_flagged() {
        let log = RmaLog::new();
        attach(&log, 1, false);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Shared, target: 0 });
        let v = check(&log);
        assert_eq!(v.iter().filter(|v| v.kind == ViolationKind::NestedLock).count(), 1);
        assert_eq!(v.iter().filter(|v| v.kind == ViolationKind::EpochLeak).count(), 1);
    }

    #[test]
    fn unlock_without_lock_and_mismatch_flagged() {
        let log = RmaLog::new();
        attach(&log, 1, false);
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Shared, target: 0 });
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        let v = check(&log);
        assert_eq!(v.iter().filter(|v| v.kind == ViolationKind::UnlockWithoutLock).count(), 1);
        assert_eq!(v.iter().filter(|v| v.kind == ViolationKind::MismatchedUnlock).count(), 1);
    }

    #[test]
    fn unlock_all_requires_lock_all() {
        let log = RmaLog::new();
        attach(&log, 1, false);
        log.push(0, 0, RmaEvent::UnlockAll);
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::UnlockAllWithoutLockAll);
    }

    #[test]
    fn exclusive_interval_overlap_flagged() {
        let log = RmaLog::new();
        attach(&log, 2, false);
        // Rank 0's exclusive epoch never closes before rank 1's opens —
        // a broken runtime (or forged log) failing mutual exclusion.
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        let v = check(&log);
        assert_eq!(v.iter().filter(|v| v.kind == ViolationKind::ExclusiveOverlap).count(), 1);
    }

    #[test]
    fn shared_read_after_remote_put_needs_sync() {
        let log = RmaLog::new();
        attach(&log, 2, true);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 3, len: 1 });
        log.push(0, 0, RmaEvent::Sync);
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        // Rank 1 locks but reads without syncing first: stale.
        log.push(0, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 3, len: 1 });
        log.push(0, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::MissingSync);
        assert_eq!(v[0].rank, 1);
    }

    #[test]
    fn shared_read_with_sync_is_clean_and_own_writes_exempt() {
        let log = RmaLog::new();
        attach(&log, 2, true);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 3, len: 1 });
        // Reading back one's own put needs no sync.
        log.push(0, 0, RmaEvent::Get { target: 0, disp: 3, len: 1 });
        log.push(0, 0, RmaEvent::Sync);
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Sync);
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 3, len: 1 });
        log.push(0, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        assert!(check(&log).is_empty());
    }

    #[test]
    fn barrier_counts_as_sync_point() {
        let log = RmaLog::new();
        attach(&log, 2, true);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Sync);
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Barrier);
        log.push(0, 1, RmaEvent::Barrier);
        log.push(0, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        assert!(check(&log).is_empty());
    }

    #[test]
    fn non_shared_window_has_no_sync_rule() {
        let log = RmaLog::new();
        attach(&log, 2, false);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        assert!(check(&log).is_empty());
    }
}
