//! Streaming chunk-latency statistics: Welford mean/variance per worker,
//! coefficient of variation, and straggler skew.
//!
//! Latencies arrive as `u64` nanoseconds (the service computes them as
//! `report_time - lease.granted_ns`) and are folded into `f64`
//! accumulators immediately: near-`u64::MAX` values lose precision but
//! can never wrap, and every `u64` counter below advances saturating.

/// Welford's online algorithm for mean and variance. Numerically stable
/// for long streams; a single sample reports zero variance.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fold one observation into the stream.
    pub fn push(&mut self, x: f64) {
        self.count = self.count.saturating_add(1);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the stream (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation, `sigma / mu` (0 when the mean is not
    /// positive — latencies are non-negative, so a zero mean means no
    /// signal, not infinite spread).
    pub fn cov(&self) -> f64 {
        let mu = self.mean();
        if mu > 0.0 {
            self.stddev() / mu
        } else {
            0.0
        }
    }

    /// Drop all state (used at observation-window boundaries).
    pub fn reset(&mut self) {
        *self = Welford::default();
    }
}

/// One completed chunk, as observed by the monitor.
#[derive(Clone, Copy, Debug)]
pub struct ChunkSample {
    /// Reporting worker id (mapped into `0..p` by the monitor).
    pub worker: u32,
    /// Chunk length in iterations (clamped to at least 1).
    pub len: u64,
    /// Wall latency of the chunk in nanoseconds: grant to report.
    pub latency_ns: u64,
}

/// Per-job streaming statistics: lifetime per-worker per-iteration
/// latency (for imbalance signals) plus a resettable window of whole
/// chunk latencies (for the overhead signal).
#[derive(Clone, Debug)]
pub struct JobStats {
    /// Lifetime per-iteration latency per worker slot.
    per_worker: Vec<Welford>,
    /// Per-chunk wall latency within the current observation window.
    window: Welford,
    /// Per-iteration latency within the current observation window.
    window_iter: Welford,
    chunks: u64,
    iters: u64,
}

impl JobStats {
    /// New monitor for `p` worker slots (clamped to at least 1).
    pub fn new(p: u32) -> Self {
        Self {
            per_worker: vec![Welford::default(); p.max(1) as usize],
            window: Welford::default(),
            window_iter: Welford::default(),
            chunks: 0,
            iters: 0,
        }
    }

    /// Fold one completed chunk into the stream.
    pub fn observe(&mut self, sample: ChunkSample) {
        let len = sample.len.max(1);
        let per_iter = sample.latency_ns as f64 / len as f64;
        let slots = self.per_worker.len();
        // `slots >= 1` by construction, so the remainder is total.
        let slot = (sample.worker as usize).checked_rem(slots).unwrap_or(0);
        if let Some(w) = self.per_worker.get_mut(slot) {
            w.push(per_iter);
        }
        self.window.push(sample.latency_ns as f64);
        self.window_iter.push(per_iter);
        self.chunks = self.chunks.saturating_add(1);
        self.iters = self.iters.saturating_add(len);
    }

    /// Chunks observed over the job's lifetime.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Iterations observed over the job's lifetime.
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// Chunks in the current observation window.
    pub fn window_chunks(&self) -> u64 {
        self.window.count()
    }

    /// Mean whole-chunk latency in the current window, nanoseconds.
    pub fn mean_chunk_latency_ns(&self) -> f64 {
        self.window.mean()
    }

    /// Coefficient of variation of per-iteration latency within the
    /// current window (irregularity of the workload right now).
    pub fn window_iter_cov(&self) -> f64 {
        self.window_iter.cov()
    }

    /// Coefficient of variation *across workers* of the lifetime mean
    /// per-iteration latency: heterogeneity of the fleet.
    pub fn worker_cov(&self) -> f64 {
        let means: Vec<f64> =
            self.per_worker.iter().filter(|w| w.count() > 0).map(Welford::mean).collect();
        if means.len() < 2 {
            return 0.0;
        }
        let mut agg = Welford::default();
        for m in means {
            agg.push(m);
        }
        agg.cov()
    }

    /// Straggler skew: slowest worker's mean per-iteration latency over
    /// the across-worker mean (1.0 = perfectly balanced; needs at least
    /// two measured workers to be meaningful).
    pub fn straggler_skew(&self) -> f64 {
        let means: Vec<f64> =
            self.per_worker.iter().filter(|w| w.count() > 0).map(Welford::mean).collect();
        if means.len() < 2 {
            return 1.0;
        }
        let max = means.iter().copied().fold(0.0f64, f64::max);
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Reset the observation window (lifetime per-worker state stays).
    pub fn reset_window(&mut self) {
        self.window.reset();
        self.window_iter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [3.0f64, 7.0, 7.0, 19.0, 2.0, 11.0];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert!((w.cov() - var.sqrt() / mean).abs() < 1e-9);
    }

    #[test]
    fn single_sample_variance_is_zero() {
        let mut w = Welford::default();
        w.push(42.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.cov(), 0.0);
    }

    #[test]
    fn empty_stream_reports_zeroes() {
        let w = Welford::default();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.cov(), 0.0);
    }

    #[test]
    fn latencies_near_u64_max_do_not_wrap() {
        // Extreme-value audit: the largest representable latencies fold
        // into finite f64 statistics and saturating counters.
        let mut s = JobStats::new(2);
        for w in 0..2u32 {
            s.observe(ChunkSample { worker: w, len: 1, latency_ns: u64::MAX });
            s.observe(ChunkSample { worker: w, len: u64::MAX, latency_ns: u64::MAX });
        }
        assert!(s.mean_chunk_latency_ns().is_finite());
        assert!(s.worker_cov().is_finite());
        assert!(s.straggler_skew().is_finite());
        assert_eq!(s.chunks(), 4);
        assert_eq!(s.iters(), u64::MAX, "iteration counter saturates, not wraps");
    }

    #[test]
    fn zero_len_chunk_clamped() {
        let mut s = JobStats::new(1);
        s.observe(ChunkSample { worker: 0, len: 0, latency_ns: 100 });
        assert_eq!(s.iters(), 1);
        assert!((s.mean_chunk_latency_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_skew_identifies_slow_worker() {
        let mut s = JobStats::new(4);
        for w in 0..4u32 {
            let per_iter = if w == 3 { 400 } else { 100 };
            for _ in 0..8 {
                s.observe(ChunkSample { worker: w, len: 10, latency_ns: per_iter * 10 });
            }
        }
        // Means: 100,100,100,400 -> mean 175, max 400 -> skew ~2.29.
        assert!((s.straggler_skew() - 400.0 / 175.0).abs() < 1e-9);
        assert!(s.worker_cov() > 0.5);
    }

    #[test]
    fn balanced_workers_have_unit_skew() {
        let mut s = JobStats::new(4);
        for w in 0..4u32 {
            s.observe(ChunkSample { worker: w, len: 5, latency_ns: 500 });
        }
        assert!((s.straggler_skew() - 1.0).abs() < 1e-9);
        assert_eq!(s.worker_cov(), 0.0);
    }

    #[test]
    fn skew_defaults_before_two_workers_measured() {
        let mut s = JobStats::new(8);
        assert_eq!(s.straggler_skew(), 1.0);
        s.observe(ChunkSample { worker: 2, len: 1, latency_ns: 10 });
        assert_eq!(s.straggler_skew(), 1.0);
        assert_eq!(s.worker_cov(), 0.0);
    }

    #[test]
    fn window_resets_but_lifetime_persists() {
        let mut s = JobStats::new(2);
        s.observe(ChunkSample { worker: 0, len: 1, latency_ns: 100 });
        s.observe(ChunkSample { worker: 1, len: 1, latency_ns: 300 });
        assert_eq!(s.window_chunks(), 2);
        s.reset_window();
        assert_eq!(s.window_chunks(), 0);
        assert_eq!(s.mean_chunk_latency_ns(), 0.0);
        assert_eq!(s.chunks(), 2, "lifetime counters survive the reset");
        assert!(s.straggler_skew() > 1.0, "per-worker history survives the reset");
    }

    #[test]
    fn out_of_range_worker_maps_into_slots() {
        let mut s = JobStats::new(3);
        s.observe(ChunkSample { worker: 3, len: 1, latency_ns: 90 });
        s.observe(ChunkSample { worker: 4, len: 1, latency_ns: 90 });
        assert_eq!(s.chunks(), 2);
        // Worker 3 lands in slot 0, worker 4 in slot 1: two measured.
        assert!((s.straggler_skew() - 1.0).abs() < 1e-9);
    }
}
