//! # autotune — online DLS technique selection
//!
//! The paper fixes one DLS technique per run and leaves choosing it to
//! the user. This crate closes that loop for the `dls-service` AUTO job
//! mode, in the spirit of Booth's adaptive self-scheduling loop
//! scheduler (arXiv:2007.07977): fold every completed-chunk report into
//! streaming per-worker latency statistics ([`stats::JobStats`]), and at
//! batch boundaries let a policy engine ([`policy::Tuner`]) decide
//! whether the measured overhead-vs-imbalance balance warrants switching
//! the live technique along the ladder `SS → GSS → FAC2 → AF`.
//!
//! The tuner only ever *proposes* a [`dls::Decision`]; applying it — via
//! [`dls::SwitchableScheduler::switch`], which re-bases the new
//! calculator onto the remaining range without touching the job's two
//! global counters — and journaling it are the service's job. That split
//! keeps this crate purely computational and deterministic: same report
//! stream in, same decision stream out, which is what lets a journal
//! replay reproduce an AUTO job's history bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

// Counter arithmetic here feeds scheduling decisions; deny wrapping
// operators and narrowing casts in production code (floats are exempt
// from the lint by design — the estimators are f64 end-to-end).
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod policy;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod stats;

pub use policy::{Tuner, TunerConfig};
pub use stats::{ChunkSample, JobStats, Welford};
