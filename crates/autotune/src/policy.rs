//! The Booth-style policy engine: decide, at batch boundaries only,
//! whether to switch the live technique along the overhead/imbalance
//! ladder `SS → GSS → FAC2 → AF`.
//!
//! Two opposing pressures drive the ladder:
//!
//! * **Overhead** — when the fixed per-fetch cost `h` is a large
//!   fraction of the mean chunk latency, the job is paying more to
//!   *get* work than to *do* it: move to a coarser-chunked technique
//!   (up the ladder), which amortises `h` over bigger chunks.
//! * **Imbalance** — when per-iteration latency is irregular (high
//!   c.o.v. in the window) or the fleet is skewed (straggler ratio),
//!   fixed chunk-growth formulas misallocate: jump to AF, which sizes
//!   chunks from measured per-worker rates.
//!
//! Decisions carry hysteresis: after a switch the tuner holds for
//! `cooldown` batch windows so the new technique's own transient (its
//! large opening chunks, AF's warmup) is not misread as a new signal.

use crate::stats::{ChunkSample, JobStats};
use dls::switchable::{Decision, SchedKind, SwitchReason};
use dls::{Kind, SchedState};

/// The technique ladder, finest to coarsest-then-adaptive.
pub const LADDER: [SchedKind; 4] = [
    SchedKind::Fixed(Kind::SS),
    SchedKind::Fixed(Kind::GSS),
    SchedKind::Fixed(Kind::FAC2),
    SchedKind::Af,
];

/// Tuner thresholds and cadence. [`TunerConfig::new`] gives defaults
/// scaled to the worker count.
#[derive(Clone, Copy, Debug)]
pub struct TunerConfig {
    /// Estimated fixed per-fetch scheduling overhead, nanoseconds.
    pub overhead_ns: u64,
    /// Settled chunks per decision window (a "batch"); decisions are
    /// only taken at multiples of this.
    pub batch: u64,
    /// Decision windows to hold after a switch (hysteresis).
    pub cooldown: u64,
    /// Minimum chunks observed in the window before acting.
    pub min_window: u64,
    /// Overhead fraction `h / (h + mean_chunk_latency)` above which the
    /// tuner coarsens.
    pub overhead_hi: f64,
    /// Straggler skew (slowest worker / mean) above which the tuner
    /// jumps to AF.
    pub skew_hi: f64,
    /// Per-iteration latency c.o.v. within the window above which the
    /// tuner jumps to AF.
    pub cov_hi: f64,
}

impl TunerConfig {
    /// Defaults for a fleet of `p` workers: one decision per `p`
    /// settles, one window of cooldown.
    pub fn new(p: u32) -> Self {
        Self {
            overhead_ns: 20_000,
            batch: u64::from(p.max(1)),
            cooldown: 1,
            min_window: 3,
            overhead_hi: 0.15,
            skew_hi: 1.5,
            cov_hi: 0.75,
        }
    }
}

/// The per-job tuner: a [`JobStats`] monitor plus the switching policy.
///
/// Drive it with [`observe`](Tuner::observe) on every settled chunk and
/// [`on_settle`](Tuner::on_settle) after each; the latter returns a
/// [`Decision`] only at batch boundaries when a signal fires. The tuner
/// is deterministic in its input stream — replaying the same reports
/// reproduces the same decisions — but the service never relies on
/// that: decisions are journaled, and replay applies the journaled
/// record rather than re-running the policy.
#[derive(Clone, Debug)]
pub struct Tuner {
    cfg: TunerConfig,
    stats: JobStats,
    settles: u64,
    cooldown: u64,
    seq: u32,
}

impl Tuner {
    /// New tuner for `p` worker slots with explicit config.
    pub fn new(p: u32, cfg: TunerConfig) -> Self {
        Self { cfg, stats: JobStats::new(p), settles: 0, cooldown: 0, seq: 0 }
    }

    /// New tuner with [`TunerConfig::new`] defaults.
    pub fn with_defaults(p: u32) -> Self {
        Self::new(p, TunerConfig::new(p))
    }

    /// The monitor's current statistics.
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Next decision sequence number to be issued.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Restore the decision counter after journal replay, so resumed
    /// jobs continue the dense sequence instead of restarting at 0.
    pub fn resume_at(&mut self, seq: u32) {
        self.seq = seq;
    }

    /// Fold one settled chunk's measurement into the monitor.
    pub fn observe(&mut self, sample: ChunkSample) {
        self.stats.observe(sample);
    }

    /// Account one settled lease; at batch boundaries, evaluate the
    /// policy against `active` and propose a switch. `global` is the
    /// job's current global counter pair (recorded in the decision as
    /// the re-basing origin).
    pub fn on_settle(&mut self, active: SchedKind, global: SchedState) -> Option<Decision> {
        self.settles = self.settles.saturating_add(1);
        if self.settles < self.cfg.batch.max(1) {
            return None;
        }
        self.settles = 0;
        if self.cooldown > 0 {
            self.cooldown = self.cooldown.saturating_sub(1);
            self.stats.reset_window();
            return None;
        }
        if self.stats.window_chunks() < self.cfg.min_window {
            return None;
        }
        let proposal = self.evaluate(active);
        self.stats.reset_window();
        let (to, reason) = proposal?;
        let decision = Decision {
            seq: self.seq,
            step: global.step,
            scheduled: global.scheduled,
            from: active,
            to,
            reason,
        };
        self.seq = self.seq.saturating_add(1);
        self.cooldown = self.cfg.cooldown;
        Some(decision)
    }

    /// The pure policy: signals from the current window, against the
    /// active technique's ladder position.
    fn evaluate(&self, active: SchedKind) -> Option<(SchedKind, SwitchReason)> {
        let h = self.cfg.overhead_ns as f64;
        let mean_chunk = self.stats.mean_chunk_latency_ns();
        let denom = h + mean_chunk;
        let overhead_frac = if denom > 0.0 { h / denom } else { 0.0 };
        let pos = LADDER.iter().position(|k| *k == active);
        if overhead_frac > self.cfg.overhead_hi {
            // Paying too much per fetch: coarsen one rung.
            return match pos {
                Some(i) => {
                    let next = LADDER.get(i.saturating_add(1))?;
                    Some((*next, SwitchReason::Overhead))
                }
                // Off-ladder technique under overhead pressure: join
                // the ladder at its coarse end.
                None => Some((SchedKind::Fixed(Kind::FAC2), SwitchReason::Overhead)),
            };
        }
        let skewed = self.stats.straggler_skew() > self.cfg.skew_hi;
        let irregular = self.stats.window_iter_cov() > self.cfg.cov_hi;
        if (skewed || irregular) && active != SchedKind::Af {
            // Overhead is cheap but allocation is wrong: go adaptive.
            return Some((SchedKind::Af, SwitchReason::Imbalance));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GLOBAL: SchedState = SchedState { step: 10, scheduled: 500 };

    /// Feed `chunks` settles of uniform (worker, len, latency) samples
    /// and return the first decision, if any.
    fn drive(
        tuner: &mut Tuner,
        active: SchedKind,
        samples: &[(u32, u64, u64)],
    ) -> Option<Decision> {
        let mut out = None;
        for &(worker, len, latency_ns) in samples {
            tuner.observe(ChunkSample { worker, len, latency_ns });
            let d = tuner.on_settle(active, GLOBAL);
            out = out.or(d);
        }
        out
    }

    fn cheap_chunks(n: usize) -> Vec<(u32, u64, u64)> {
        // 1µs chunks against the 20µs default overhead: frac ~0.95.
        (0..n).map(|i| (i as u32 % 4, 10, 1_000)).collect()
    }

    fn fat_chunks(n: usize) -> Vec<(u32, u64, u64)> {
        // 10ms chunks: overhead fraction ~0.002.
        (0..n).map(|i| (i as u32 % 4, 1_000, 10_000_000)).collect()
    }

    #[test]
    fn no_decision_before_batch_boundary() {
        let mut t = Tuner::with_defaults(4);
        for s in cheap_chunks(3) {
            t.observe(ChunkSample { worker: s.0, len: s.1, latency_ns: s.2 });
            assert!(t.on_settle(LADDER[0], GLOBAL).is_none(), "batch is 4");
        }
    }

    #[test]
    fn overhead_pressure_climbs_one_rung() {
        let mut t = Tuner::with_defaults(4);
        let d = drive(&mut t, LADDER[0], &cheap_chunks(4)).expect("decision at boundary");
        assert_eq!(d.from, LADDER[0]);
        assert_eq!(d.to, LADDER[1], "SS coarsens to GSS");
        assert_eq!(d.reason, SwitchReason::Overhead);
        assert_eq!(d.seq, 0);
        assert_eq!((d.step, d.scheduled), (GLOBAL.step, GLOBAL.scheduled));
    }

    #[test]
    fn ladder_walk_terminates_at_af() {
        // Sustained overhead pressure walks SS->GSS->FAC2->AF and then
        // goes quiet: AF is the last rung.
        let mut t = Tuner::new(4, TunerConfig { cooldown: 0, ..TunerConfig::new(4) });
        let mut active = LADDER[0];
        let mut walked = Vec::new();
        for _ in 0..8 {
            if let Some(d) = drive(&mut t, active, &cheap_chunks(4)) {
                assert_eq!(d.from, active);
                walked.push(d.to);
                active = d.to;
            }
        }
        assert_eq!(walked, vec![LADDER[1], LADDER[2], LADDER[3]]);
        assert_eq!(active, SchedKind::Af);
    }

    #[test]
    fn balanced_fat_chunks_stay_put() {
        let mut t = Tuner::with_defaults(4);
        assert!(drive(&mut t, LADDER[2], &fat_chunks(12)).is_none());
    }

    #[test]
    fn straggler_skew_goes_adaptive() {
        let mut t = Tuner::with_defaults(4);
        // Worker 3 is 8x slower per iteration; chunks fat, so no
        // overhead pressure.
        let samples: Vec<_> = (0..8)
            .map(|i| {
                let w = i as u32 % 4;
                let per_iter = if w == 3 { 80_000 } else { 10_000 };
                (w, 1_000u64, per_iter * 1_000)
            })
            .collect();
        let d = drive(&mut t, LADDER[2], &samples).expect("imbalance decision");
        assert_eq!(d.to, SchedKind::Af);
        assert_eq!(d.reason, SwitchReason::Imbalance);
    }

    #[test]
    fn irregular_iterations_go_adaptive() {
        let mut t = Tuner::with_defaults(4);
        // Same worker speeds but wildly varying per-iteration cost.
        let samples: Vec<_> = (0..8)
            .map(|i| {
                let cost: u64 = if i % 2 == 0 { 1_000_000 } else { 40_000_000 };
                (i as u32 % 4, 100u64, cost)
            })
            .collect();
        let d = drive(&mut t, LADDER[1], &samples).expect("cov decision");
        assert_eq!(d.to, SchedKind::Af);
        assert_eq!(d.reason, SwitchReason::Imbalance);
    }

    #[test]
    fn af_does_not_switch_to_itself_on_imbalance() {
        let mut t = Tuner::with_defaults(4);
        let samples: Vec<_> = (0..8)
            .map(|i| {
                let w = i as u32 % 4;
                let per_iter = if w == 0 { 90_000 } else { 10_000 };
                (w, 1_000u64, per_iter * 1_000)
            })
            .collect();
        assert!(drive(&mut t, SchedKind::Af, &samples).is_none());
    }

    #[test]
    fn cooldown_suppresses_the_next_window() {
        let mut t = Tuner::with_defaults(4);
        let first = drive(&mut t, LADDER[0], &cheap_chunks(4));
        assert!(first.is_some());
        // Next window still under pressure: held by cooldown.
        assert!(drive(&mut t, LADDER[1], &cheap_chunks(4)).is_none());
        // Window after that: fires again, with a dense seq.
        let third = drive(&mut t, LADDER[1], &cheap_chunks(4)).expect("post-cooldown");
        assert_eq!(third.seq, 1);
        assert_eq!(third.to, LADDER[2]);
    }

    #[test]
    fn resume_at_continues_sequence() {
        let mut t = Tuner::with_defaults(4);
        t.resume_at(7);
        let d = drive(&mut t, LADDER[0], &cheap_chunks(4)).expect("decision");
        assert_eq!(d.seq, 7);
        assert_eq!(t.seq(), 8);
    }

    #[test]
    fn off_ladder_technique_coarsens_to_fac2() {
        let mut t = Tuner::with_defaults(4);
        let d = drive(&mut t, SchedKind::Fixed(Kind::TSS), &cheap_chunks(4)).expect("decision");
        assert_eq!(d.to, SchedKind::Fixed(Kind::FAC2));
    }

    #[test]
    fn extreme_latencies_do_not_panic_the_policy() {
        let mut t = Tuner::with_defaults(2);
        let samples: Vec<_> = (0..6).map(|i| (i as u32 % 2, u64::MAX, u64::MAX)).collect();
        // Enormous (finite) latencies mean zero overhead pressure and
        // zero spread: no decision, no panic.
        assert!(drive(&mut t, LADDER[0], &samples).is_none());
    }
}
