//! # cluster-sim — deterministic discrete-event cluster simulation
//!
//! The paper's evaluation runs on a 16-node Intel Xeon cluster (miniHPC)
//! with an Omni-Path fabric. That hardware is not available here, and a
//! single-core host cannot produce stable wall-clock measurements for
//! 256 concurrent workers — so the figures are regenerated in **virtual
//! time**: every cost that shapes the paper's results is modelled
//! explicitly and deterministically:
//!
//! * per-iteration compute cost (supplied by the `workloads` crate),
//! * network round-trips for global-queue RMA operations
//!   ([`net::NetworkModel`]),
//! * serialization at contended resources — the global work queue, the
//!   node-local work queue, an OpenMP dispatcher ([`resource::Resource`]),
//! * the `MPI_Win_lock` lock-polling penalty that grows with the number
//!   of concurrent waiters ([`lock::ContendedLock`], after Zhao, Balaji
//!   & Gropp, ISPDC 2016),
//! * OpenMP end-of-worksharing barriers ([`machine::MachineParams`]).
//!
//! The crate also provides a generic deterministic event queue
//! ([`engine::EventQueue`]) and per-worker execution traces
//! ([`trace::Trace`]) from which idle/sync time — the quantity Figures 2
//! and 3 of the paper illustrate — can be computed exactly.
//!
//! Everything is integer nanoseconds ([`time::Time`]); no wall clock, no
//! randomness, fully reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod engine;
pub mod lock;
pub mod machine;
pub mod net;
pub mod resource;
pub mod time;
pub mod trace;

pub use engine::EventQueue;
pub use lock::{ContendedLock, LockGrant};
pub use machine::{MachineParams, SimTopology};
pub use net::NetworkModel;
pub use resource::Resource;
pub use time::Time;
pub use trace::{Segment, SegmentKind, Trace};
