//! Per-worker execution traces: the data behind the paper's Figures 2
//! and 3 (computation vs. synchronization/idle time per worker).

use crate::time::{to_secs, Time};

/// What a worker was doing during a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// Executing loop iterations.
    Compute,
    /// Obtaining a chunk (scheduling overhead: RMA, lock, dispatch).
    Sched,
    /// Blocked in a barrier or waiting for peers (the implicit
    /// synchronization of Figure 2).
    Sync,
    /// Idle: no work left anywhere.
    Idle,
}

/// One timeline segment of one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Global worker id.
    pub worker: u32,
    /// Segment start (virtual ns).
    pub start: Time,
    /// Segment end (virtual ns).
    pub end: Time,
    /// Activity during the segment.
    pub kind: SegmentKind,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A full execution trace: segments from all workers, in recording order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    segments: Vec<Segment>,
    enabled: bool,
}

/// Aggregate times per activity for one worker or a whole trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityTotals {
    /// Total compute time.
    pub compute: Time,
    /// Total scheduling-overhead time.
    pub sched: Time,
    /// Total synchronization (barrier / peer-wait) time.
    pub sync: Time,
    /// Total idle time.
    pub idle: Time,
}

impl ActivityTotals {
    /// Sum of all activities.
    pub fn total(&self) -> Time {
        self.compute + self.sched + self.sync + self.idle
    }

    /// Fraction of time not spent computing (0.0 when empty).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.compute as f64 / total as f64
    }
}

impl Trace {
    /// A trace that records segments.
    pub fn recording() -> Self {
        Self { segments: Vec::new(), enabled: true }
    }

    /// A trace that drops everything (zero overhead for large sweeps).
    pub fn disabled() -> Self {
        Self { segments: Vec::new(), enabled: false }
    }

    /// Record a segment (no-op when disabled or empty).
    pub fn record(&mut self, worker: u32, start: Time, end: Time, kind: SegmentKind) {
        if self.enabled && end > start {
            self.segments.push(Segment { worker, start, end, kind });
        }
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments of one worker, in recording order.
    pub fn worker_segments(&self, worker: u32) -> Vec<Segment> {
        self.segments.iter().filter(|s| s.worker == worker).copied().collect()
    }

    /// Activity totals for one worker.
    pub fn worker_totals(&self, worker: u32) -> ActivityTotals {
        let mut t = ActivityTotals::default();
        for s in self.segments.iter().filter(|s| s.worker == worker) {
            let d = s.duration();
            match s.kind {
                SegmentKind::Compute => t.compute += d,
                SegmentKind::Sched => t.sched += d,
                SegmentKind::Sync => t.sync += d,
                SegmentKind::Idle => t.idle += d,
            }
        }
        t
    }

    /// Activity totals across all workers.
    pub fn totals(&self) -> ActivityTotals {
        let mut t = ActivityTotals::default();
        for s in &self.segments {
            let d = s.duration();
            match s.kind {
                SegmentKind::Compute => t.compute += d,
                SegmentKind::Sched => t.sched += d,
                SegmentKind::Sync => t.sync += d,
                SegmentKind::Idle => t.idle += d,
            }
        }
        t
    }

    /// Latest segment end across all workers (the parallel loop time).
    pub fn makespan(&self) -> Time {
        self.segments.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// An ASCII Gantt chart with `width` columns — the shape of the
    /// paper's Figures 2/3. `#` compute, `s` scheduling, `.` sync/idle.
    pub fn gantt(&self, workers: u32, width: usize) -> String {
        let span = self.makespan().max(1);
        let mut out = String::new();
        for w in 0..workers {
            let mut row = vec![' '; width];
            for s in self.segments.iter().filter(|s| s.worker == w) {
                let a = (s.start as u128 * width as u128 / span as u128) as usize;
                let b =
                    ((s.end as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
                let ch = match s.kind {
                    SegmentKind::Compute => '#',
                    SegmentKind::Sched => 's',
                    SegmentKind::Sync | SegmentKind::Idle => '.',
                };
                for c in row.iter_mut().take(b).skip(a) {
                    // Compute wins over sched wins over idle when segments
                    // round into the same cell.
                    let keep = matches!(*c, '#') || (*c == 's' && ch == '.');
                    if !keep {
                        *c = ch;
                    }
                }
            }
            out.push_str(&format!("worker {w:>3} |{}|\n", row.iter().collect::<String>()));
        }
        out
    }

    /// Per-worker `(compute, sched, sync+idle)` rows in seconds — the
    /// numeric form of Figures 2/3.
    pub fn figure_rows(&self, workers: u32) -> Vec<(u32, f64, f64, f64)> {
        (0..workers)
            .map(|w| {
                let t = self.worker_totals(w);
                (w, to_secs(t.compute), to_secs(t.sched), to_secs(t.sync + t.idle))
            })
            .collect()
    }

    /// Serialise the trace as CSV (`worker,start_ns,end_ns,kind`), for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("worker,start_ns,end_ns,kind\n");
        for s in &self.segments {
            let kind = match s.kind {
                SegmentKind::Compute => "compute",
                SegmentKind::Sched => "sched",
                SegmentKind::Sync => "sync",
                SegmentKind::Idle => "idle",
            };
            out.push_str(&format!("{},{},{},{}\n", s.worker, s.start, s.end, kind));
        }
        out
    }

    /// Parse a trace back from [`Trace::to_csv`] output. Unknown kinds
    /// or malformed rows are reported as `Err(line_number)`.
    pub fn from_csv(csv: &str) -> Result<Trace, usize> {
        let mut trace = Trace::recording();
        for (idx, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |s: Option<&str>| s.and_then(|v| v.trim().parse::<u64>().ok());
            let worker = parse(parts.next()).ok_or(idx)? as u32;
            let start = parse(parts.next()).ok_or(idx)?;
            let end = parse(parts.next()).ok_or(idx)?;
            let kind = match parts.next().map(str::trim) {
                Some("compute") => SegmentKind::Compute,
                Some("sched") => SegmentKind::Sched,
                Some("sync") => SegmentKind::Sync,
                Some("idle") => SegmentKind::Idle,
                _ => return Err(idx),
            };
            trace.record(worker, start, end, kind);
        }
        Ok(trace)
    }

    /// Render the trace as a standalone SVG Gantt chart (one row per
    /// worker; green = compute, orange = scheduling, grey = sync/idle).
    pub fn to_svg(&self, workers: u32, width: u32) -> String {
        let span = self.makespan().max(1);
        let row_h = 18u32;
        let gap = 4u32;
        let label_w = 70u32;
        let height = workers * (row_h + gap) + gap + 24;
        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" font-family="monospace" font-size="11">"#,
            w = width + label_w + 10
        );
        svg.push_str(&format!(
            r#"<text x="4" y="14">t_end = {}</text>"#,
            crate::time::fmt_secs(span)
        ));
        for w in 0..workers {
            let y = 24 + w * (row_h + gap);
            svg.push_str(&format!(r#"<text x="4" y="{}">w{w}</text>"#, y + row_h - 5));
            svg.push_str(&format!(
                r##"<rect x="{label_w}" y="{y}" width="{width}" height="{row_h}" fill="#f2f2f2"/>"##
            ));
            for s in self.segments.iter().filter(|s| s.worker == w) {
                let x = label_w as u64 + s.start * u64::from(width) / span;
                let seg_w = ((s.end - s.start) * u64::from(width)).div_ceil(span).max(1);
                let color = match s.kind {
                    SegmentKind::Compute => "#4caf50",
                    SegmentKind::Sched => "#ff9800",
                    SegmentKind::Sync => "#9e9e9e",
                    SegmentKind::Idle => "#cfcfcf",
                };
                svg.push_str(&format!(
                    r##"<rect x="{x}" y="{y}" width="{seg_w}" height="{row_h}" fill="{color}"/>"##
                ));
            }
        }
        svg.push_str("</svg>");
        svg
    }

    /// Load imbalance of the compute time across `workers`:
    /// `max/mean - 1` (0.0 = perfectly balanced).
    pub fn compute_imbalance(&self, workers: u32) -> f64 {
        let totals: Vec<Time> = (0..workers).map(|w| self.worker_totals(w).compute).collect();
        let max = totals.iter().copied().max().unwrap_or(0);
        let sum: Time = totals.iter().sum();
        if sum == 0 || workers == 0 {
            return 0.0;
        }
        let mean = sum as f64 / f64::from(workers);
        max as f64 / mean - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_by_kind() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 10, SegmentKind::Compute);
        tr.record(0, 10, 12, SegmentKind::Sched);
        tr.record(0, 12, 20, SegmentKind::Sync);
        tr.record(1, 0, 20, SegmentKind::Compute);
        let t0 = tr.worker_totals(0);
        assert_eq!((t0.compute, t0.sched, t0.sync, t0.idle), (10, 2, 8, 0));
        let all = tr.totals();
        assert_eq!(all.compute, 30);
        assert_eq!(tr.makespan(), 20);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.record(0, 0, 10, SegmentKind::Compute);
        assert!(tr.segments().is_empty());
        assert_eq!(tr.makespan(), 0);
    }

    #[test]
    fn empty_segments_dropped() {
        let mut tr = Trace::recording();
        tr.record(0, 5, 5, SegmentKind::Idle);
        assert!(tr.segments().is_empty());
    }

    #[test]
    fn overhead_fraction() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 75, SegmentKind::Compute);
        tr.record(0, 75, 100, SegmentKind::Sync);
        let t = tr.worker_totals(0);
        assert!((t.overhead_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 50, SegmentKind::Compute);
        tr.record(0, 50, 100, SegmentKind::Sync);
        tr.record(1, 0, 100, SegmentKind::Compute);
        let g = tr.gantt(2, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('.'));
        assert!(!lines[1].contains('.'));
    }

    #[test]
    fn csv_roundtrip() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 10, SegmentKind::Compute);
        tr.record(1, 5, 9, SegmentKind::Sched);
        tr.record(0, 10, 30, SegmentKind::Sync);
        let csv = tr.to_csv();
        let parsed = Trace::from_csv(&csv).unwrap();
        assert_eq!(parsed.segments(), tr.segments());
    }

    #[test]
    fn csv_rejects_bad_rows() {
        assert_eq!(Trace::from_csv("header\n1,2,3,nonsense\n").err(), Some(1));
        assert_eq!(Trace::from_csv("header\nx,2,3,idle\n").err(), Some(1));
        assert!(Trace::from_csv("header\n\n1,2,3,idle\n").is_ok());
    }

    #[test]
    fn svg_has_a_rect_per_segment_plus_backgrounds() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 50, SegmentKind::Compute);
        tr.record(0, 50, 100, SegmentKind::Sync);
        tr.record(1, 0, 100, SegmentKind::Compute);
        let svg = tr.to_svg(2, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 2 background rows + 3 segments.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("#4caf50"));
        assert!(svg.contains("#9e9e9e"));
    }

    #[test]
    fn compute_imbalance_metric() {
        let mut tr = Trace::recording();
        tr.record(0, 0, 100, SegmentKind::Compute);
        tr.record(1, 0, 50, SegmentKind::Compute);
        // mean 75, max 100 -> 1/3 imbalance.
        assert!((tr.compute_imbalance(2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Trace::recording().compute_imbalance(4), 0.0);
    }

    #[test]
    fn figure_rows_in_seconds() {
        let mut tr = Trace::recording();
        tr.record(0, 0, crate::time::SEC, SegmentKind::Compute);
        let rows = tr.figure_rows(1);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 1.0).abs() < 1e-12);
    }
}
