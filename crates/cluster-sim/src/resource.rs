//! A serialized service centre: requests are processed one at a time in
//! arrival order. Models any shared resource whose accesses serialize —
//! an atomic counter's cache line, the memory-side handler of RMA
//! atomics, an OpenMP dispatcher's critical section.

use crate::time::Time;

/// First-come-first-served single server.
///
/// `request(arrive, service)` returns the interval `(start, end)` the
/// request occupies the server: `start = max(arrive, server_free)`,
/// `end = start + service`. Requests must be issued in non-decreasing
/// causal order by the simulation driver (an event-driven executor does
/// this naturally); the struct itself only tracks when the server frees
/// up.
#[derive(Clone, Debug, Default)]
pub struct Resource {
    free_at: Time,
    ops: u64,
    busy: Time,
    queued_ops: u64,
    total_wait: Time,
}

impl Resource {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve a request arriving at `arrive` that needs `service` time.
    /// Returns `(start, end)`.
    pub fn request(&mut self, arrive: Time, service: Time) -> (Time, Time) {
        let start = arrive.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.ops += 1;
        self.busy += service;
        if start > arrive {
            self.queued_ops += 1;
            self.total_wait += start - arrive;
        }
        (start, end)
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total requests served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Requests that had to queue.
    pub fn queued_ops(&self) -> u64 {
        self.queued_ops
    }

    /// Cumulative queueing delay across all requests.
    pub fn total_wait(&self) -> Time {
        self.total_wait
    }

    /// Cumulative service (busy) time.
    pub fn busy_time(&self) -> Time {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.request(100, 10), (100, 110));
        assert_eq!(r.free_at(), 110);
    }

    #[test]
    fn busy_server_queues() {
        let mut r = Resource::new();
        r.request(0, 100);
        let (start, end) = r.request(10, 5);
        assert_eq!((start, end), (100, 105));
        assert_eq!(r.queued_ops(), 1);
        assert_eq!(r.total_wait(), 90);
    }

    #[test]
    fn serialization_of_simultaneous_arrivals() {
        let mut r = Resource::new();
        let mut ends = Vec::new();
        for _ in 0..4 {
            ends.push(r.request(0, 10).1);
        }
        assert_eq!(ends, vec![10, 20, 30, 40]);
        assert_eq!(r.busy_time(), 40);
        assert_eq!(r.ops(), 4);
    }

    #[test]
    fn gap_lets_server_idle() {
        let mut r = Resource::new();
        r.request(0, 10);
        let (start, _) = r.request(50, 10);
        assert_eq!(start, 50);
        assert_eq!(r.queued_ops(), 0);
    }
}
