//! The `MPI_Win_lock` contention model.
//!
//! Zhao, Balaji & Gropp (ISPDC 2016) describe the lock-polling scheme
//! most MPI one-sided implementations use for passive-target locks: a
//! blocked origin repeatedly sends lock-attempt messages to the target
//! until the lock is granted. The paper under reproduction attributes
//! the poor `X+SS` performance of its MPI+MPI approach to exactly this:
//! *"the number of lock-attempt messages increases when multiple
//! processes try to acquire the same lock at the same time, and more
//! overhead is introduced."*
//!
//! [`ContendedLock`] models this: each acquisition costs a base hold
//! time plus a penalty proportional to the number of requests already
//! queued when it arrives — the extra lock-attempt traffic every waiter
//! injects into the target.

use crate::time::Time;

/// Result of one lock acquisition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockGrant {
    /// When the lock was granted (critical section begins).
    pub start: Time,
    /// When the lock was released (grant + hold + penalties).
    pub end: Time,
    /// Requests that were queued ahead of this one on arrival.
    pub queued_ahead: u64,
}

/// FCFS exclusive lock with a per-waiter polling penalty.
#[derive(Clone, Debug)]
pub struct ContendedLock {
    /// Extra service time added per request queued ahead of an
    /// acquisition (models lock-attempt message storms).
    pub poll_penalty: Time,
    free_at: Time,
    /// `(arrive, end)` of recent grants, pruned lazily; used to compute
    /// the queue depth seen by a new arrival.
    recent: std::collections::VecDeque<(Time, Time)>,
    acquisitions: u64,
    contended: u64,
    polls: u64,
    total_penalty: Time,
    revocations: u64,
}

impl ContendedLock {
    /// New lock with the given per-waiter polling penalty.
    pub fn new(poll_penalty: Time) -> Self {
        Self {
            poll_penalty,
            free_at: 0,
            recent: std::collections::VecDeque::new(),
            acquisitions: 0,
            contended: 0,
            polls: 0,
            total_penalty: 0,
            revocations: 0,
        }
    }

    /// Acquire at `arrive`, holding the lock for `hold` (the critical
    /// section: the queue update the paper performs under
    /// `MPI_Win_lock`). Returns the grant interval including penalties.
    pub fn acquire(&mut self, arrive: Time, hold: Time) -> LockGrant {
        // Queue depth = earlier grants still unfinished when we arrive.
        while let Some(&(_, end)) = self.recent.front() {
            if end <= arrive {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        let queued_ahead = self.recent.len() as u64;
        let penalty = self.poll_penalty * queued_ahead;
        let start = arrive.max(self.free_at);
        let end = start + hold + penalty;
        self.free_at = end;
        self.recent.push_back((arrive, end));
        self.acquisitions += 1;
        if queued_ahead > 0 {
            self.contended += 1;
            self.polls += queued_ahead;
            self.total_penalty += penalty;
        }
        LockGrant { start, end, queued_ahead }
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that found at least one request queued ahead.
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Total failed lock-poll attempts: the sum of queue depths seen by
    /// arriving acquisitions — each request queued ahead of an arrival
    /// corresponds to one more round of lock-attempt messages the
    /// arrival must send before being granted.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Cumulative polling penalty added across all acquisitions.
    pub fn total_penalty(&self) -> Time {
        self.total_penalty
    }

    /// When the lock next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// A holder died inside its critical section: the lock stays held
    /// (nobody releases it) until a survivor's bounded-grant timeout
    /// fires and revokes it at `until`. Extends the current grant to
    /// `until` — acquisitions arriving in between queue behind the
    /// corpse exactly as real `MPI_Win_lock` pollers would — and counts
    /// one revocation.
    pub fn seize_until(&mut self, until: Time) {
        if until > self.free_at {
            if let Some(back) = self.recent.back_mut() {
                back.1 = until;
            } else {
                self.recent.push_back((until, until));
            }
            self.free_at = until;
        }
        self.revocations += 1;
    }

    /// Grants revoked from dead holders by [`ContendedLock::seize_until`].
    pub fn revocations(&self) -> u64 {
        self.revocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_costs_base_hold() {
        let mut l = ContendedLock::new(100);
        let g = l.acquire(1000, 50);
        assert_eq!(g, LockGrant { start: 1000, end: 1050, queued_ahead: 0 });
        assert_eq!(l.contended(), 0);
    }

    #[test]
    fn waiters_pay_polling_penalty() {
        let mut l = ContendedLock::new(100);
        l.acquire(0, 50); // holds [0, 50)
        let g1 = l.acquire(10, 50); // 1 ahead -> +100
        assert_eq!(g1.queued_ahead, 1);
        assert_eq!(g1.start, 50);
        assert_eq!(g1.end, 200);
        let g2 = l.acquire(20, 50); // 2 ahead -> +200
        assert_eq!(g2.queued_ahead, 2);
        assert_eq!(g2.end, 200 + 50 + 200);
        assert_eq!(l.contended(), 2);
        assert_eq!(l.polls(), 3);
        assert_eq!(l.total_penalty(), 300);
    }

    #[test]
    fn polls_counted_even_without_penalty() {
        // With the polling penalty ablated away the *count* of failed
        // poll attempts must still be observable.
        let mut l = ContendedLock::new(0);
        l.acquire(0, 50);
        l.acquire(0, 50); // 1 ahead
        l.acquire(0, 50); // 2 ahead
        assert_eq!(l.polls(), 3);
        assert_eq!(l.total_penalty(), 0);
    }

    #[test]
    fn storm_cost_grows_superlinearly() {
        // P simultaneous requesters: total completion grows ~P^2 with
        // polling, ~P without. This is the X+SS failure mode.
        let finish = |penalty: Time, p: u64| {
            let mut l = ContendedLock::new(penalty);
            (0..p).map(|_| l.acquire(0, 50).end).max().unwrap()
        };
        let no_poll_8 = finish(0, 8);
        let poll_8 = finish(100, 8);
        let no_poll_16 = finish(0, 16);
        let poll_16 = finish(100, 16);
        assert_eq!(no_poll_8, 8 * 50);
        assert!(poll_8 > no_poll_8);
        // Doubling P doubles the no-poll time but more than doubles the
        // polling time.
        assert_eq!(no_poll_16 / no_poll_8, 2);
        assert!(poll_16 > 2 * poll_8);
    }

    #[test]
    fn seized_lock_queues_arrivals_until_revocation() {
        let mut l = ContendedLock::new(0);
        // Holder acquires at 0 and dies in its critical section; the
        // survivor's bounded-grant timeout revokes the lock at 500.
        let g = l.acquire(0, 50);
        assert_eq!(g.end, 50);
        l.seize_until(500);
        assert_eq!(l.free_at(), 500);
        assert_eq!(l.revocations(), 1);
        // An arrival during the dead hold waits out the seizure.
        let g2 = l.acquire(100, 50);
        assert_eq!(g2.start, 500);
        assert_eq!(g2.queued_ahead, 1);
        // After repair the lock behaves normally again.
        let g3 = l.acquire(1000, 50);
        assert_eq!(g3, LockGrant { start: 1000, end: 1050, queued_ahead: 0 });
    }

    #[test]
    fn seize_on_idle_lock_blocks_until_deadline() {
        let mut l = ContendedLock::new(0);
        l.seize_until(300);
        let g = l.acquire(10, 5);
        assert_eq!(g.start, 300);
    }

    #[test]
    fn lock_frees_up_after_quiet_period() {
        let mut l = ContendedLock::new(100);
        l.acquire(0, 50);
        let g = l.acquire(1000, 50);
        assert_eq!(g.queued_ahead, 0);
        assert_eq!(g.start, 1000);
    }
}
