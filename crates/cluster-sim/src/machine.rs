//! Machine and runtime cost parameters, with defaults calibrated to the
//! paper's testbed (miniHPC: 16 dual-socket Xeon nodes, 16 workers per
//! node used, Omni-Path fabric, Intel MPI 18 / Intel OpenMP).
//!
//! The absolute values are engineering estimates — the goal is to
//! preserve the *ordering* the paper measures:
//!
//! * an OpenMP dynamic/guided dispatch (one atomic in the runtime) is
//!   much cheaper than an `MPI_Win_lock`-guarded queue update;
//! * the `MPI_Win_lock` path additionally degrades with concurrent
//!   waiters (lock polling);
//! * an OpenMP worksharing construct ends with a barrier whose cost
//!   grows with the team size and, more importantly, whose *idle time*
//!   depends on the imbalance of the chunk being executed.

use crate::net::NetworkModel;
use crate::time::Time;

/// Cluster shape for a virtual-time experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTopology {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Workers per node (MPI ranks for MPI+MPI; OpenMP threads for
    /// MPI+OpenMP — the paper uses 16 for both).
    pub workers_per_node: u32,
}

impl SimTopology {
    /// `nodes` x `workers_per_node`.
    pub fn new(nodes: u32, workers_per_node: u32) -> Self {
        assert!(nodes > 0 && workers_per_node > 0);
        Self { nodes, workers_per_node }
    }

    /// Total workers in the cluster.
    pub fn total_workers(&self) -> u32 {
        self.nodes * self.workers_per_node
    }
}

/// All tunable cost constants of the virtual cluster.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Interconnect model.
    pub net: NetworkModel,
    /// Service time of the global queue's memory-side atomic handler.
    /// Concurrent global-queue operations serialize at this rate.
    pub rma_service_ns: Time,
    /// Critical-section time of one local-queue update performed under
    /// `MPI_Win_lock` (lock + fetch/update + `MPI_Win_sync` + unlock).
    pub shm_lock_hold_ns: Time,
    /// Lock-polling penalty per queued waiter for `MPI_Win_lock`
    /// (see [`crate::lock::ContendedLock`]).
    pub shm_poll_penalty_ns: Time,
    /// One OpenMP dynamic/guided dispatch (an atomic in the OpenMP
    /// runtime — no polling pathology).
    pub omp_dispatch_ns: Time,
    /// Fixed part of an OpenMP end-of-worksharing barrier.
    pub omp_barrier_base_ns: Time,
    /// Per-thread part of an OpenMP barrier.
    pub omp_barrier_per_thread_ns: Time,
    /// Local (in-process) chunk-size calculation cost — the distributed
    /// chunk-calculation arithmetic itself.
    pub chunk_calc_ns: Time,
    /// Back-off before a worker re-probes an empty local queue while a
    /// peer's refill from the global queue is in flight.
    pub shm_retry_ns: Time,
    /// Per-request handling time of a master process in the
    /// master-worker execution models (receive, compute chunk, send).
    pub master_service_ns: Time,
    /// One-way latency of an intra-node message (master-worker models'
    /// worker -> local-master requests).
    pub intra_msg_latency_ns: Time,
}

impl Default for MachineParams {
    fn default() -> Self {
        Self {
            net: NetworkModel::default(),
            rma_service_ns: 300,
            shm_lock_hold_ns: 2_500,
            shm_poll_penalty_ns: 800,
            omp_dispatch_ns: 120,
            omp_barrier_base_ns: 1_500,
            omp_barrier_per_thread_ns: 100,
            chunk_calc_ns: 80,
            shm_retry_ns: 1_500,
            master_service_ns: 700,
            intra_msg_latency_ns: 300,
        }
    }
}

impl MachineParams {
    /// Cost of one OpenMP barrier for a team of `threads`.
    pub fn omp_barrier(&self, threads: u32) -> Time {
        self.omp_barrier_base_ns + self.omp_barrier_per_thread_ns * Time::from(threads)
    }

    /// Origin-side cost of one global-queue RMA operation, excluding
    /// target-side serialization (handled by a [`crate::Resource`]).
    pub fn rma_origin_cost(&self) -> Time {
        self.net.rma_round_trip() + self.chunk_calc_ns
    }

    /// Parameters with the MPI lock-polling penalty disabled — the
    /// ablation that shows the `X+SS` pathology comes from the lock
    /// model, not the queue logic.
    pub fn without_lock_polling(mut self) -> Self {
        self.shm_poll_penalty_ns = 0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_cost_ordering() {
        let m = MachineParams::default();
        // OpenMP dispatch must be cheapest; the MPI shm lock path most
        // expensive of the intra-node operations — the paper's central
        // overhead observation.
        assert!(m.omp_dispatch_ns < m.shm_lock_hold_ns);
        assert!(m.chunk_calc_ns < m.omp_dispatch_ns * 10);
        // Remote RMA costs more than any intra-node dispatch.
        assert!(m.rma_origin_cost() > m.omp_dispatch_ns);
    }

    #[test]
    fn barrier_scales_with_team() {
        let m = MachineParams::default();
        assert!(m.omp_barrier(16) > m.omp_barrier(2));
        assert_eq!(m.omp_barrier(0), m.omp_barrier_base_ns);
    }

    #[test]
    fn ablation_disables_polling() {
        let m = MachineParams::default().without_lock_polling();
        assert_eq!(m.shm_poll_penalty_ns, 0);
        assert_eq!(m.shm_lock_hold_ns, MachineParams::default().shm_lock_hold_ns);
    }

    #[test]
    fn topology_totals() {
        let t = SimTopology::new(16, 16);
        assert_eq!(t.total_workers(), 256);
    }

    #[test]
    #[should_panic]
    fn empty_topology_rejected() {
        SimTopology::new(0, 1);
    }
}
