//! The interconnect model: a classic alpha-beta (latency + bandwidth)
//! fabric with miniHPC's Omni-Path parameters as defaults.

use crate::time::Time;

/// Latency/bandwidth network model.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way message latency in ns. The raw Omni-Path figure is
    /// ~100 ns; an MPI small-message path adds software overhead, so the
    /// default is 1 µs end-to-end.
    pub latency_ns: Time,
    /// Link bandwidth in bytes per microsecond (Omni-Path: 100 Gbit/s =
    /// 12.5 GB/s = 12_500 bytes/µs).
    pub bytes_per_us: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self { latency_ns: 1_000, bytes_per_us: 12_500 }
    }
}

impl NetworkModel {
    /// Time for a one-way transfer of `bytes`.
    pub fn transfer(&self, bytes: u64) -> Time {
        self.latency_ns + (bytes * 1_000) / self.bytes_per_us.max(1)
    }

    /// Time for a remote atomic (fetch-and-op / CAS): request +
    /// response, both tiny messages.
    pub fn rma_round_trip(&self) -> Time {
        2 * self.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let net = NetworkModel::default();
        assert_eq!(net.transfer(0), 1_000);
        assert_eq!(net.transfer(8), 1_000); // 8 B below 1 ns of bandwidth
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let net = NetworkModel::default();
        // 12.5 MB at 12.5 GB/s = 1 ms (+1 us latency).
        assert_eq!(net.transfer(12_500_000), 1_000 + 1_000_000);
    }

    #[test]
    fn rma_is_a_round_trip() {
        let net = NetworkModel { latency_ns: 500, bytes_per_us: 12_500 };
        assert_eq!(net.rma_round_trip(), 1_000);
    }
}
