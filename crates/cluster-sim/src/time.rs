//! Virtual time: integer nanoseconds.

/// Virtual time / duration in nanoseconds. `u64` gives ~584 years of
/// simulated time — ample.
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const US: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MS: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SEC: Time = 1_000_000_000;

/// Render a time as seconds with millisecond precision, e.g. `"19.600s"`.
pub fn fmt_secs(t: Time) -> String {
    format!("{:.3}s", t as f64 / SEC as f64)
}

/// Convert to floating-point seconds.
pub fn to_secs(t: Time) -> f64 {
    t as f64 / SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_consistent() {
        assert_eq!(1000 * US, MS);
        assert_eq!(1000 * MS, SEC);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(19_600 * MS), "19.600s");
        assert_eq!(fmt_secs(0), "0.000s");
    }

    #[test]
    fn to_secs_roundtrip() {
        assert!((to_secs(SEC) - 1.0).abs() < 1e-12);
        assert!((to_secs(MS) - 0.001).abs() < 1e-12);
    }
}
