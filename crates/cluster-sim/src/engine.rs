//! A deterministic discrete-event queue.
//!
//! Events with equal timestamps pop in insertion order (a monotone
//! sequence number breaks ties), so a simulation built on this queue is
//! reproducible regardless of hash seeds or platform.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

struct Entry<E> {
    key: Reverse<(Time, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `event` at time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), event });
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((5, 0)));
        q.push(7, 2);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((10, 1)));
    }
}
