//! Property tests for the simulation primitives: the event queue must
//! be a stable priority queue, resources must serialize without losing
//! or inventing time, and the contended lock must be FCFS with
//! monotone penalties.

use cluster_sim::{ContendedLock, EventQueue, Resource};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_matches_stable_sort(events in prop::collection::vec((0u64..1000, 0u32..100), 0..200)) {
        let mut q = EventQueue::new();
        for &(t, payload) in &events {
            q.push(t, payload);
        }
        let mut expected: Vec<(u64, u32)> = events.clone();
        // Stable sort by time preserves insertion order for ties —
        // exactly the promised pop order.
        expected.sort_by_key(|&(t, _)| t);
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn resource_serializes_without_overlap(reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(arrive, _)| arrive);
        let mut r = Resource::new();
        let mut last_end = 0u64;
        let mut total_service = 0u64;
        for &(arrive, service) in &reqs {
            let (start, end) = r.request(arrive, service);
            prop_assert!(start >= arrive);
            prop_assert!(start >= last_end, "intervals must not overlap");
            prop_assert_eq!(end - start, service);
            last_end = end;
            total_service += service;
        }
        prop_assert!(r.busy_time() == total_service);
        prop_assert_eq!(r.ops(), reqs.len() as u64);
    }

    #[test]
    fn resource_work_conserving(reqs in prop::collection::vec((0u64..1_000, 1u64..100), 1..50)) {
        // The server never idles while requests are queued: final
        // free_at <= max(arrive) + total service.
        let mut reqs = reqs;
        reqs.sort_by_key(|&(a, _)| a);
        let total: u64 = reqs.iter().map(|&(_, s)| s).sum();
        let max_arrive = reqs.iter().map(|&(a, _)| a).max().unwrap();
        let mut r = Resource::new();
        for &(a, s) in &reqs {
            r.request(a, s);
        }
        prop_assert!(r.free_at() <= max_arrive + total);
    }

    #[test]
    fn lock_grants_fcfs_and_disjoint(reqs in prop::collection::vec((0u64..5_000, 1u64..200), 1..60), penalty in 0u64..500) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(a, _)| a);
        let mut lock = ContendedLock::new(penalty);
        let mut last = None::<(u64, u64)>;
        for &(arrive, hold) in &reqs {
            let g = lock.acquire(arrive, hold);
            prop_assert!(g.start >= arrive);
            prop_assert!(g.end >= g.start + hold);
            if let Some((_, prev_end)) = last {
                prop_assert!(g.start >= prev_end, "FCFS grants must not overlap");
            }
            last = Some((g.start, g.end));
        }
        prop_assert_eq!(lock.acquisitions(), reqs.len() as u64);
    }

    #[test]
    fn zero_penalty_lock_equals_resource(reqs in prop::collection::vec((0u64..2_000, 1u64..100), 1..50)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(a, _)| a);
        let mut lock = ContendedLock::new(0);
        let mut res = Resource::new();
        for &(a, h) in &reqs {
            let g = lock.acquire(a, h);
            let (s, e) = res.request(a, h);
            prop_assert_eq!((g.start, g.end), (s, e));
        }
    }

    #[test]
    fn penalties_only_increase_completion(reqs in prop::collection::vec((0u64..2_000, 1u64..100), 1..50)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(a, _)| a);
        let finish = |penalty: u64| {
            let mut lock = ContendedLock::new(penalty);
            reqs.iter().map(|&(a, h)| lock.acquire(a, h).end).max().unwrap()
        };
        prop_assert!(finish(100) >= finish(0));
        prop_assert!(finish(500) >= finish(100));
    }
}
