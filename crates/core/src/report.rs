//! Scaling reports: speedup and parallel efficiency across node
//! counts, rendered as text tables — the derived metrics readers
//! compute from Figures 4-7 by hand.

use crate::schedule::HierSchedule;
use cluster_sim::MachineParams;
use dls::Kind;
use hier::Approach;
use workloads::CostTable;

/// One row of a scaling study.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Total workers.
    pub workers: u32,
    /// Parallel loop time in seconds.
    pub seconds: f64,
    /// Speedup relative to the serial cost-table total.
    pub speedup: f64,
    /// Parallel efficiency: speedup / workers.
    pub efficiency: f64,
}

/// A scaling study of one schedule configuration over node counts.
#[derive(Clone, Debug)]
pub struct ScalingStudy {
    /// Label, e.g. `"GSS+STATIC (MPI+MPI)"`.
    pub label: String,
    /// One point per node count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingStudy {
    /// Run the study in virtual time.
    pub fn run(
        inter: Kind,
        intra: Kind,
        approach: Approach,
        node_counts: &[u32],
        workers_per_node: u32,
        machine: MachineParams,
        table: &CostTable,
    ) -> ScalingStudy {
        let serial_secs = table.stats().total as f64 / 1e9;
        let points = node_counts
            .iter()
            .map(|&nodes| {
                let seconds = HierSchedule::builder()
                    .inter(inter)
                    .intra(intra)
                    .approach(approach)
                    .nodes(nodes)
                    .workers_per_node(workers_per_node)
                    .machine(machine)
                    .build()
                    .simulate(table)
                    .seconds();
                let workers = nodes * workers_per_node;
                let speedup = serial_secs / seconds.max(f64::MIN_POSITIVE);
                ScalingPoint {
                    nodes,
                    workers,
                    seconds,
                    speedup,
                    efficiency: speedup / f64::from(workers),
                }
            })
            .collect();
        ScalingStudy { label: format!("{inter}+{intra} ({approach})"), points }
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.label);
        out.push_str("  nodes  workers     time    speedup  efficiency\n");
        for p in &self.points {
            out.push_str(&format!(
                "  {:>5} {:>8} {:>7.2}s {:>9.1}x {:>10.1}%\n",
                p.nodes,
                p.workers,
                p.seconds,
                p.speedup,
                p.efficiency * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::synthetic::Synthetic;

    fn study() -> ScalingStudy {
        let w = Synthetic::uniform(30_000, 1_000, 50_000, 3);
        let table = CostTable::build(&w);
        ScalingStudy::run(
            Kind::GSS,
            Kind::GSS,
            Approach::MpiMpi,
            &[1, 2, 4, 8],
            4,
            MachineParams::default(),
            &table,
        )
    }

    #[test]
    fn speedup_grows_with_nodes() {
        let s = study();
        assert_eq!(s.points.len(), 4);
        for w in s.points.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
    }

    #[test]
    fn efficiency_bounded_by_one() {
        for p in study().points {
            assert!(p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-9, "{p:?}");
        }
    }

    #[test]
    fn render_contains_rows() {
        let s = study();
        let text = s.render();
        assert!(text.contains("GSS+GSS (MPI+MPI)"));
        assert_eq!(text.lines().count(), 2 + s.points.len());
    }
}
