//! The [`HierSchedule`] builder — the main entry point of the library.

use cluster_sim::{MachineParams, SimTopology};
use dls::{Kind, Technique};
use hier::live::{run_live, LiveConfig, LiveResult};
use hier::sim::{simulate, SimConfig, SimResult};
use hier::{Approach, HierSpec};
use workloads::{CostTable, Workload};

/// A fully-specified hierarchical schedule: techniques, approach,
/// cluster shape and cost model. Build with [`HierSchedule::builder`].
#[derive(Clone, Debug)]
pub struct HierSchedule {
    spec: HierSpec,
    approach: Approach,
    nodes: u32,
    workers_per_node: u32,
    machine: MachineParams,
    trace: bool,
    record_chunks: bool,
    slowdown: Vec<f64>,
    refill: hier::sim::RefillPolicy,
    omp_nowait: bool,
    weights: Vec<f64>,
    awf: Option<dls::adaptive::AwfVariant>,
    global_mode: hier::GlobalQueueMode,
    faults: resilience::FaultPlan,
    net_inter: Option<dls::SchedKind>,
}

impl HierSchedule {
    /// Start building a schedule (defaults: `GSS+GSS`, MPI+MPI, 4 nodes
    /// x 16 workers, default machine parameters).
    pub fn builder() -> HierScheduleBuilder {
        HierScheduleBuilder::default()
    }

    /// The `X+Y` combination.
    pub fn spec(&self) -> HierSpec {
        self.spec
    }

    /// The intra-node implementation.
    pub fn approach(&self) -> Approach {
        self.approach
    }

    /// `(nodes, workers_per_node)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.nodes, self.workers_per_node)
    }

    /// Run in virtual time against a precomputed cost table.
    /// Deterministic; models the full cluster of this schedule.
    pub fn simulate(&self, table: &CostTable) -> SimResult {
        simulate(&self.sim_config(), table)
    }

    /// Run in virtual time under the *hierarchical master-worker*
    /// execution model (HDSS style, the paper's related work): dedicated
    /// global and per-node masters serve chunk requests over messages
    /// instead of shared queues.
    pub fn simulate_master_worker(&self, table: &CostTable) -> SimResult {
        hier::sim::simulate_master_worker(&self.sim_config(), table)
    }

    /// Run in virtual time under the *flat* master-worker model
    /// (DLB-tool style): every worker requests chunks directly from one
    /// global master — the configuration whose master bottleneck
    /// motivated hierarchical DLS in the first place.
    pub fn simulate_flat_master_worker(&self, table: &CostTable) -> SimResult {
        hier::sim::simulate_flat_master_worker(&self.sim_config(), table)
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(
            SimTopology::new(self.nodes, self.workers_per_node),
            self.machine,
            self.spec,
            self.approach,
        );
        cfg.trace = self.trace;
        cfg.record_chunks = self.record_chunks;
        cfg.slowdown = self.slowdown.clone();
        cfg.refill = self.refill;
        cfg.omp_nowait = self.omp_nowait;
        cfg.weights = self.weights.clone();
        cfg.awf = self.awf;
        cfg.global_mode = self.global_mode;
        cfg.faults = self.faults.clone();
        cfg
    }

    /// Run for real on OS threads, executing the workload's kernel.
    ///
    /// Panics if the runtime fails to allocate windows or an RMA op
    /// errors — use [`hier::live::run_live`] directly for a fallible
    /// variant (or to record an RMA log for `rma-check`).
    pub fn run_live(&self, workload: &(dyn Workload + Sync)) -> LiveResult {
        run_live(&self.live_config(), workload).expect("live run failed")
    }

    /// Run for real with the **global queue behind TCP**: self-hosts a
    /// `dls-service` server on an ephemeral loopback port, runs the
    /// MPI+MPI hierarchy against it (one node-agent connection per
    /// node, ranks self-scheduling sub-chunks from the shared window),
    /// then shuts the server down and returns its final stats snapshot
    /// alongside the usual result — feed it to
    /// [`crate::export::service_report`] for the JSON pipeline.
    ///
    /// To target an external, long-running server (shared by many
    /// tenants), call [`hier::live::run_live_net`] with its address
    /// instead.
    pub fn run_live_net(
        &self,
        workload: &(dyn Workload + Sync),
    ) -> (LiveResult, dls_service::StatsSnapshot) {
        let server =
            dls_service::Server::start(dls_service::ServiceConfig::default(), "127.0.0.1:0")
                .expect("self-hosted dls-service failed to bind");
        let result = hier::live::run_live_net(&self.live_config(), workload, server.addr())
            .expect("live net run failed");
        (result, server.shutdown())
    }

    /// Run the hierarchical master-worker model for real (dedicated
    /// global master at rank 0, working local masters, two-sided
    /// messaging).
    pub fn run_live_master_worker(&self, workload: &(dyn Workload + Sync)) -> LiveResult {
        hier::live::run_live_master_worker(&self.live_config(), workload)
    }

    /// Run the flat master-worker model for real (every worker requests
    /// directly from the dedicated master at rank 0).
    pub fn run_live_flat_master_worker(&self, workload: &(dyn Workload + Sync)) -> LiveResult {
        hier::live::run_live_flat_master_worker(&self.live_config(), workload)
    }

    fn live_config(&self) -> LiveConfig {
        let mut cfg = LiveConfig::new(self.nodes, self.workers_per_node, self.spec, self.approach);
        cfg.weights = self.weights.clone();
        cfg.awf = self.awf;
        cfg.global_mode = self.global_mode;
        cfg.trace = self.trace;
        cfg.faults = self.faults.clone();
        cfg.net_inter = self.net_inter;
        cfg
    }
}

/// Builder for [`HierSchedule`].
#[derive(Clone, Debug)]
pub struct HierScheduleBuilder {
    inter: Technique,
    intra: Technique,
    approach: Approach,
    nodes: u32,
    workers_per_node: u32,
    machine: MachineParams,
    trace: bool,
    record_chunks: bool,
    slowdown: Vec<f64>,
    refill: hier::sim::RefillPolicy,
    omp_nowait: bool,
    weights: Vec<f64>,
    awf: Option<dls::adaptive::AwfVariant>,
    global_mode: hier::GlobalQueueMode,
    faults: resilience::FaultPlan,
    net_inter: Option<dls::SchedKind>,
}

impl Default for HierScheduleBuilder {
    fn default() -> Self {
        Self {
            inter: Technique::gss(),
            intra: Technique::gss(),
            approach: Approach::MpiMpi,
            nodes: 4,
            workers_per_node: 16,
            machine: MachineParams::default(),
            trace: false,
            record_chunks: false,
            slowdown: Vec::new(),
            refill: hier::sim::RefillPolicy::Fastest,
            omp_nowait: false,
            weights: Vec::new(),
            awf: None,
            global_mode: hier::GlobalQueueMode::SingleAtomic,
            faults: resilience::FaultPlan::none(),
            net_inter: None,
        }
    }
}

impl HierScheduleBuilder {
    /// Inter-node technique by kind (default parameters).
    pub fn inter(mut self, kind: Kind) -> Self {
        self.inter = Technique::from_kind(kind);
        self
    }

    /// Inter-node technique with explicit parameters.
    pub fn inter_technique(mut self, t: Technique) -> Self {
        self.inter = t;
        self
    }

    /// Intra-node technique by kind (default parameters).
    pub fn intra(mut self, kind: Kind) -> Self {
        self.intra = Technique::from_kind(kind);
        self
    }

    /// Intra-node technique with explicit parameters.
    pub fn intra_technique(mut self, t: Technique) -> Self {
        self.intra = t;
        self
    }

    /// MPI+MPI (proposed) or MPI+OpenMP (baseline).
    pub fn approach(mut self, a: Approach) -> Self {
        self.approach = a;
        self
    }

    /// Number of compute nodes.
    pub fn nodes(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one node");
        self.nodes = n;
        self
    }

    /// Workers per node (ranks or team threads).
    pub fn workers_per_node(mut self, w: u32) -> Self {
        assert!(w > 0, "need at least one worker per node");
        self.workers_per_node = w;
        self
    }

    /// Virtual-time cost constants.
    pub fn machine(mut self, m: MachineParams) -> Self {
        self.machine = m;
        self
    }

    /// Record per-worker timeline segments in `simulate` (virtual
    /// time) and `run_live` (wall-clock time).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Record executed sub-chunks in `simulate`.
    pub fn record_chunks(mut self, on: bool) -> Self {
        self.record_chunks = on;
        self
    }

    /// Per-worker slowdown multipliers (failure injection).
    pub fn slowdown(mut self, s: Vec<f64>) -> Self {
        self.slowdown = s;
        self
    }

    /// Local-queue refill policy for MPI+MPI `simulate` runs.
    pub fn refill(mut self, policy: hier::sim::RefillPolicy) -> Self {
        self.refill = policy;
        self
    }

    /// Model OpenMP's `nowait` clause for MPI+OpenMP `simulate` runs
    /// (the paper's future work).
    pub fn omp_nowait(mut self, on: bool) -> Self {
        self.omp_nowait = on;
        self
    }

    /// Static mean-normalised per-worker weights for weighted
    /// techniques (WF), indexed by global worker id.
    pub fn weights(mut self, w: Vec<f64>) -> Self {
        self.weights = w;
        self
    }

    /// Enable adaptive weighted factoring at the intra-node level
    /// (MPI+MPI): sub-chunks are WF-sized with weights learned from
    /// measured worker rates (extension beyond the paper's four
    /// techniques).
    pub fn awf(mut self, variant: dls::adaptive::AwfVariant) -> Self {
        self.awf = Some(variant);
        self
    }

    /// How the global queue is realised over RMA (MPI+MPI): the
    /// single-atomic distributed chunk calculation (default) or
    /// lock-guarded counters.
    pub fn global_queue(mut self, mode: hier::GlobalQueueMode) -> Self {
        self.global_mode = mode;
        self
    }

    /// Technique the **net backend** (`run_live_net`) asks the
    /// `dls-service` global queue to run, overriding the inter kind.
    /// This opens the inter level to the measurement-driven kinds —
    /// `AF`, the `AWF-*` variants, and the self-switching `AUTO` mode
    /// — which the server sizes from observed chunk latencies and
    /// which therefore have no in-process `Technique` equivalent.
    /// `simulate` and the RMA-backed live runs ignore it.
    pub fn net_inter(mut self, kind: impl Into<dls::SchedKind>) -> Self {
        self.net_inter = Some(kind.into());
        self
    }

    /// Inject faults (rank crashes, stragglers, message faults) from a
    /// deterministic [`resilience::FaultPlan`]. Applies to `simulate`
    /// (all execution models) and, for crashes, to MPI+MPI `run_live`;
    /// recovery events land in the result's `recovery` timeline. The
    /// default inert plan changes nothing.
    pub fn faults(mut self, plan: resilience::FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Finish building.
    pub fn build(self) -> HierSchedule {
        HierSchedule {
            spec: HierSpec { inter: self.inter, intra: self.intra },
            approach: self.approach,
            nodes: self.nodes,
            workers_per_node: self.workers_per_node,
            machine: self.machine,
            trace: self.trace,
            record_chunks: self.record_chunks,
            slowdown: self.slowdown,
            refill: self.refill,
            omp_nowait: self.omp_nowait,
            weights: self.weights,
            awf: self.awf,
            global_mode: self.global_mode,
            faults: self.faults,
            net_inter: self.net_inter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::synthetic::Synthetic;

    #[test]
    fn builder_defaults() {
        let s = HierSchedule::builder().build();
        assert_eq!(s.shape(), (4, 16));
        assert_eq!(s.approach(), Approach::MpiMpi);
        assert_eq!(s.spec().label(), "GSS+GSS");
    }

    #[test]
    fn simulate_and_live_agree_on_totals() {
        let w = Synthetic::uniform(2_000, 10, 100, 5);
        let table = CostTable::build(&w);
        let s = HierSchedule::builder()
            .inter(Kind::FAC2)
            .intra(Kind::GSS)
            .nodes(2)
            .workers_per_node(3)
            .build();
        let sim = s.simulate(&table);
        let live = s.run_live(&w);
        assert_eq!(sim.stats.total_iterations, 2_000);
        assert_eq!(live.stats.total_iterations, 2_000);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        HierSchedule::builder().nodes(0);
    }

    #[test]
    fn openmp_approach_runs() {
        let w = Synthetic::constant(500, 100);
        let table = CostTable::build(&w);
        let s = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::STATIC)
            .approach(Approach::MpiOpenMp)
            .nodes(2)
            .workers_per_node(4)
            .build();
        let r = s.simulate(&table);
        assert_eq!(r.stats.total_iterations, 500);
    }
}
