//! Observability exports: per-worker activity reports as JSON and
//! chrome://tracing event files.
//!
//! Both backends can record a [`cluster_sim::Trace`] (virtual time in
//! the simulator, wall-clock time in the live executors) and per-worker
//! lock/RMA counters in [`hier::stats::RunStats`]. This module turns
//! those into two machine-readable artefacts:
//!
//! * [`ActivityReport`] — per-worker [`ActivityTotals`] plus the lock
//!   counters behind the paper's `X+SS` pathology, the compute-time
//!   load-imbalance metrics (max/mean − 1 and the coefficient of
//!   variation), and a log2 histogram of per-worker failed lock polls,
//!   serialised with [`ActivityReport::to_json`].
//! * [`chrome_trace`] — the same timeline as a chrome://tracing /
//!   Perfetto-compatible JSON event array (`ph: "X"` complete events,
//!   one track per worker, grouped by node).
//!
//! Faulted runs additionally carry a recovery timeline
//! ([`resilience::RecoveryEvent`]): attach it to a report with
//! [`ActivityReport::with_recovery`] and overlay it on a timeline with
//! [`chrome_trace_with_recovery`] (`ph: "i"` instant markers).
//!
//! AUTO-mode `dls-service` campaigns additionally carry the tuner's
//! decision timeline ([`dls::Decision`]): [`service_report`] collects
//! it from the snapshot, [`ActivityReport::with_decisions`] attaches
//! one explicitly, and [`chrome_trace_with_decisions`] overlays the
//! switches on a dedicated track.

use cluster_sim::trace::{ActivityTotals, SegmentKind, Trace};
use dls_service::StatsSnapshot;
use hier::stats::RunStats;
use resilience::RecoveryEvent;

/// One worker's row of an [`ActivityReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerActivity {
    /// Global worker id.
    pub worker: u32,
    /// Time per activity kind from the trace.
    pub totals: ActivityTotals,
    /// Iterations executed.
    pub iterations: u64,
    /// Sub-chunks obtained from the node-local queue.
    pub sub_chunks: u64,
    /// Global chunks fetched.
    pub global_fetches: u64,
    /// Failed lock-poll attempts at RMA window locks.
    pub lock_polls: u64,
    /// Nanoseconds spent acquiring or holding RMA window locks.
    pub lock_time_ns: u64,
    /// RMA atomic operations issued.
    pub rma_ops: u64,
    /// Recovery actions performed on behalf of dead peers (lease
    /// reclaims and lock repairs).
    pub reclaims: u64,
}

/// One node's lock-activity row of an [`ActivityReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeActivity {
    /// Node id.
    pub node: u32,
    /// Chunks deposited into the node-local queue.
    pub deposits: u64,
    /// Sub-chunks handed out by the node-local queue.
    pub sub_chunks: u64,
    /// Local-queue lock acquisitions.
    pub lock_acquisitions: u64,
    /// Acquisitions that found the lock contended.
    pub lock_contended: u64,
    /// Failed lock-poll attempts at the local-queue lock.
    pub lock_polls: u64,
    /// Window-lock grants revoked from dead holders.
    pub lock_revocations: u64,
}

/// Durability counters of a journaled `dls-service` run, re-exported
/// through the same report pipeline (zeroed/absent for in-memory runs
/// and for the simulator backends, which have no journal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceJournal {
    /// True when the server ran with `--journal-dir`.
    pub enabled: bool,
    /// Server epoch (increments on every journaled restart).
    pub epoch: u32,
    /// Records group-committed this incarnation.
    pub records: u64,
    /// Journal bytes written this incarnation.
    pub bytes: u64,
    /// Fsyncs issued this incarnation — `records / fsyncs` is the
    /// group-commit amortisation the BENCH_9 gate measures.
    pub fsyncs: u64,
    /// Snapshots installed this incarnation.
    pub snapshots: u64,
    /// Live segment files at snapshot time.
    pub segments: u64,
}

/// Everything the paper's Figures 2/3 break down per worker, in one
/// exportable structure.
#[derive(Clone, Debug, Default)]
pub struct ActivityReport {
    /// Configuration label, e.g. `"GSS+SS (MPI+MPI)"`.
    pub label: String,
    /// Parallel loop time (latest segment end), in nanoseconds.
    pub makespan_ns: u64,
    /// Compute-time load imbalance: `max/mean - 1` (0.0 = balanced).
    pub compute_imbalance: f64,
    /// Coefficient of variation of per-worker compute time
    /// (population standard deviation / mean; 0.0 when mean is 0).
    pub compute_cov: f64,
    /// Per-worker rows, indexed by global worker id.
    pub workers: Vec<WorkerActivity>,
    /// Per-node lock-activity rows.
    pub nodes: Vec<NodeActivity>,
    /// Log2 histogram of per-worker `lock_polls`: bucket 0 counts
    /// workers with zero failed polls, bucket `i >= 1` counts workers
    /// with `2^(i-1) <= polls < 2^i`.
    pub lock_poll_histogram: Vec<u64>,
    /// Recovery timeline of the run (crashes, lease expiries,
    /// reclaims, failovers, lock repairs), time-ordered. Empty for
    /// fault-free runs. Attach with [`ActivityReport::with_recovery`].
    pub recovery: Vec<RecoveryEvent>,
    /// Journal counters when the run was a journaled `dls-service`
    /// campaign ([`service_report`] fills this from the snapshot);
    /// `None` for backends without a durability layer.
    pub journal: Option<ServiceJournal>,
    /// Tuner decision timeline of an AUTO-mode campaign, dense by
    /// `seq` ([`service_report`] collects it across the snapshot's
    /// jobs in job order; attach one explicitly with
    /// [`ActivityReport::with_decisions`]). Empty for fixed-technique
    /// runs and for backends without the service tuner.
    pub decisions: Vec<dls::Decision>,
}

/// Place `value` in its log2 bucket (0 for zero, `i` for
/// `2^(i-1) <= value < 2^i`).
fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Log2 histogram over `values` (see [`ActivityReport::lock_poll_histogram`]).
pub fn log2_histogram(values: impl IntoIterator<Item = u64>) -> Vec<u64> {
    let mut buckets = Vec::new();
    for v in values {
        let b = log2_bucket(v);
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

impl ActivityReport {
    /// Build a report from a run's trace and counters. `workers` is the
    /// total worker count (trace worker ids must be `0..workers`).
    pub fn build(label: &str, trace: &Trace, stats: &RunStats, workers: u32) -> ActivityReport {
        let worker_rows: Vec<WorkerActivity> = (0..workers)
            .map(|w| {
                let counters = stats.workers.get(w as usize).copied().unwrap_or_default();
                WorkerActivity {
                    worker: w,
                    totals: trace.worker_totals(w),
                    iterations: counters.iterations,
                    sub_chunks: counters.sub_chunks,
                    global_fetches: counters.global_fetches,
                    lock_polls: counters.lock_polls,
                    lock_time_ns: counters.lock_time_ns,
                    rma_ops: counters.rma_ops,
                    reclaims: counters.reclaims,
                }
            })
            .collect();
        let node_rows: Vec<NodeActivity> = stats
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeActivity {
                node: u32::try_from(i).unwrap_or(u32::MAX),
                deposits: n.deposits,
                sub_chunks: n.sub_chunks,
                lock_acquisitions: n.lock_acquisitions,
                lock_contended: n.lock_contended,
                lock_polls: n.lock_polls,
                lock_revocations: n.lock_revocations,
            })
            .collect();
        let compute: Vec<f64> = worker_rows.iter().map(|w| w.totals.compute as f64).collect();
        let mean = if compute.is_empty() {
            0.0
        } else {
            compute.iter().sum::<f64>() / compute.len() as f64
        };
        let compute_cov = if mean > 0.0 {
            let var =
                compute.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / compute.len() as f64;
            var.sqrt() / mean
        } else {
            0.0
        };
        ActivityReport {
            label: label.to_string(),
            makespan_ns: trace.makespan(),
            compute_imbalance: trace.compute_imbalance(workers),
            compute_cov,
            lock_poll_histogram: log2_histogram(worker_rows.iter().map(|w| w.lock_polls)),
            workers: worker_rows,
            nodes: node_rows,
            recovery: Vec::new(),
            journal: None,
            decisions: Vec::new(),
        }
    }

    /// Attach a run's recovery timeline (e.g. `SimResult::recovery` or
    /// `LiveResult::recovery`) so the report and its JSON carry the
    /// fault story alongside the activity totals.
    pub fn with_recovery(mut self, events: &[RecoveryEvent]) -> Self {
        self.recovery = events.to_vec();
        self
    }

    /// Attach a tuner decision timeline (e.g. `JobProgress::decisions`
    /// or a STATS job row's history) so the report and its JSON carry
    /// the technique-switch story of an AUTO campaign.
    pub fn with_decisions(mut self, decisions: &[dls::Decision]) -> Self {
        self.decisions = decisions.to_vec();
        self
    }

    /// Serialise as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        out.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan_ns));
        out.push_str(&format!("  \"compute_imbalance\": {},\n", fmt_f64(self.compute_imbalance)));
        out.push_str(&format!("  \"compute_cov\": {},\n", fmt_f64(self.compute_cov)));
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"worker\": {}, \"compute_ns\": {}, \"sched_ns\": {}, \
                 \"sync_ns\": {}, \"idle_ns\": {}, \"iterations\": {}, \
                 \"sub_chunks\": {}, \"global_fetches\": {}, \"lock_polls\": {}, \
                 \"lock_time_ns\": {}, \"rma_ops\": {}, \"reclaims\": {}}}{}\n",
                w.worker,
                w.totals.compute,
                w.totals.sched,
                w.totals.sync,
                w.totals.idle,
                w.iterations,
                w.sub_chunks,
                w.global_fetches,
                w.lock_polls,
                w.lock_time_ns,
                w.rma_ops,
                w.reclaims,
                comma(i, self.workers.len())
            ));
        }
        out.push_str("  ],\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"node\": {}, \"deposits\": {}, \"sub_chunks\": {}, \
                 \"lock_acquisitions\": {}, \"lock_contended\": {}, \
                 \"lock_polls\": {}, \"lock_revocations\": {}}}{}\n",
                n.node,
                n.deposits,
                n.sub_chunks,
                n.lock_acquisitions,
                n.lock_contended,
                n.lock_polls,
                n.lock_revocations,
                comma(i, self.nodes.len())
            ));
        }
        out.push_str("  ],\n  \"lock_poll_histogram\": [");
        for (i, b) in self.lock_poll_histogram.iter().enumerate() {
            out.push_str(&format!("{}{}", b, comma(i, self.lock_poll_histogram.len())));
        }
        out.push_str("],\n  \"recovery\": [\n");
        for (i, e) in self.recovery.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"at_ns\": {}, \"rank\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}{}\n",
                e.at_ns(),
                e.rank(),
                e.label(),
                escape(&e.to_string()),
                comma(i, self.recovery.len())
            ));
        }
        out.push_str("  ],\n  \"decisions\": [\n");
        for (i, d) in self.decisions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"step\": {}, \"scheduled\": {}, \"from\": \"{}\", \
                 \"to\": \"{}\", \"reason\": \"{}\"}}{}\n",
                d.seq,
                d.step,
                d.scheduled,
                d.from.name(),
                d.to.name(),
                d.reason.name(),
                comma(i, self.decisions.len())
            ));
        }
        match &self.journal {
            None => out.push_str("  ]\n}\n"),
            Some(j) => {
                out.push_str("  ],\n");
                out.push_str(&format!(
                    "  \"journal\": {{\"enabled\": {}, \"epoch\": {}, \"records\": {}, \
                     \"bytes\": {}, \"fsyncs\": {}, \"snapshots\": {}, \"segments\": {}}}\n}}\n",
                    j.enabled, j.epoch, j.records, j.bytes, j.fsyncs, j.snapshots, j.segments
                ));
            }
        }
        out
    }
}

/// Re-shape a `dls-service` [`StatsSnapshot`] into the same
/// [`ActivityReport`] every other backend exports, so the networked
/// scheduler's metrics flow through one JSON pipeline.
///
/// The mapping follows the service's topology: each *connection* is a
/// worker row (iterations it acknowledged, chunks it was granted, its
/// fetch round trips), each *job* is a node row (its granted chunks as
/// deposits, its scheduling steps as sub-chunk hand-outs, its fetches
/// as acquisitions, empty polls as contended ones, reclaimed leases as
/// revocations). `makespan_ns` is the server's uptime, and the
/// imbalance metrics are computed over per-connection acknowledged
/// iterations — the service cannot see client compute time, but the
/// iteration spread is the same Figure-2 story one level up. Trace-
/// derived fields ([`ActivityTotals`], the poll histogram) stay empty.
pub fn service_report(label: &str, snap: &StatsSnapshot) -> ActivityReport {
    let workers: Vec<WorkerActivity> = snap
        .conns
        .iter()
        .map(|c| WorkerActivity {
            worker: if c.worker == u32::MAX {
                u32::try_from(c.conn).unwrap_or(u32::MAX)
            } else {
                c.worker
            },
            totals: ActivityTotals::default(),
            iterations: c.iterations,
            sub_chunks: c.chunks,
            global_fetches: c.fetches,
            lock_polls: 0,
            lock_time_ns: 0,
            rma_ops: c.requests,
            reclaims: 0,
        })
        .collect();
    let nodes: Vec<NodeActivity> = snap
        .jobs
        .iter()
        .map(|j| NodeActivity {
            node: u32::try_from(j.job).unwrap_or(u32::MAX),
            deposits: j.chunks_granted,
            sub_chunks: j.step,
            lock_acquisitions: j.fetches,
            lock_contended: j.empty_polls,
            lock_polls: j.empty_polls,
            lock_revocations: j.leases_reclaimed,
        })
        .collect();
    let iters: Vec<f64> = workers.iter().map(|w| w.iterations as f64).collect();
    let mean = if iters.is_empty() { 0.0 } else { iters.iter().sum::<f64>() / iters.len() as f64 };
    let (imbalance, cov) = if mean > 0.0 {
        let max = iters.iter().cloned().fold(0.0f64, f64::max);
        let var = iters.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / iters.len() as f64;
        (max / mean - 1.0, var.sqrt() / mean)
    } else {
        (0.0, 0.0)
    };
    ActivityReport {
        label: label.to_string(),
        makespan_ns: snap.uptime_ns,
        compute_imbalance: imbalance,
        compute_cov: cov,
        workers,
        nodes,
        lock_poll_histogram: Vec::new(),
        recovery: Vec::new(),
        journal: Some(ServiceJournal {
            enabled: snap.journal.enabled,
            epoch: snap.journal.epoch,
            records: snap.journal.journal_records,
            bytes: snap.journal.journal_bytes,
            fsyncs: snap.journal.fsyncs,
            snapshots: snap.journal.snapshots,
            segments: snap.journal.segments,
        }),
        decisions: snap.jobs.iter().flat_map(|j| j.decisions.iter().copied()).collect(),
    }
}

/// Serialise a trace as a chrome://tracing (about://tracing, Perfetto)
/// JSON array of complete (`"ph": "X"`) events: one event per segment,
/// timestamps and durations in microseconds, `pid` = node (from
/// `workers_per_node`), `tid` = global worker id.
pub fn chrome_trace(trace: &Trace, workers_per_node: u32) -> String {
    let wpn = workers_per_node.max(1);
    let mut out = String::from("[\n");
    let segments = trace.segments();
    for (i, s) in segments.iter().enumerate() {
        let name = match s.kind {
            SegmentKind::Compute => "compute",
            SegmentKind::Sched => "sched",
            SegmentKind::Sync => "sync",
            SegmentKind::Idle => "idle",
        };
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": {}, \"tid\": {}}}{}\n",
            name,
            name,
            fmt_f64(s.start as f64 / 1e3),
            fmt_f64(s.duration() as f64 / 1e3),
            s.worker / wpn,
            s.worker,
            comma(i, segments.len())
        ));
    }
    out.push_str("]\n");
    out
}

/// Like [`chrome_trace`], with a run's recovery timeline overlaid as
/// Perfetto *instant* events (`"ph": "i"`, thread scope): a marker on
/// the victim's track for crashes and lease expiries, on the acting
/// survivor's track for reclaims, failovers and lock repairs — so the
/// timeline shows who reclaimed what, when, amid the activity
/// segments.
pub fn chrome_trace_with_recovery(
    trace: &Trace,
    workers_per_node: u32,
    recovery: &[RecoveryEvent],
) -> String {
    let wpn = workers_per_node.max(1);
    let mut out = chrome_trace(trace, workers_per_node);
    if recovery.is_empty() {
        return out;
    }
    // Splice the instant events into the existing JSON array.
    let tail = out.rfind("]\n").unwrap_or(out.len());
    out.truncate(tail);
    if trace.segments().is_empty() {
        // No trailing comma to add after an empty segment list.
    } else {
        // The last segment line has no trailing comma; add one.
        let last_line = out.trim_end().len();
        out.truncate(last_line);
        out.push_str(",\n");
    }
    for (i, e) in recovery.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"recovery\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {}, \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"detail\": \"{}\"}}}}{}\n",
            e.label(),
            fmt_f64(e.at_ns() as f64 / 1e3),
            e.rank() / wpn,
            e.rank(),
            escape(&e.to_string()),
            comma(i, recovery.len())
        ));
    }
    out.push_str("]\n");
    out
}

/// Like [`chrome_trace`], with a tuner decision timeline overlaid as
/// Perfetto *instant* events (`"ph": "i"`, process scope) on a
/// dedicated track (`pid = u32::MAX`, shown as its own group above the
/// worker lanes). Decisions are journaled with the job's counters, not
/// wall clocks, so the track's time axis is the **iteration domain**:
/// each marker sits at `ts = scheduled` (iterations handed out when
/// the switch happened), with the counter pair and both techniques in
/// `args`. Read it as "the job switched from X to Y after Z
/// iterations", not as a wall-clock instant.
pub fn chrome_trace_with_decisions(
    trace: &Trace,
    workers_per_node: u32,
    decisions: &[dls::Decision],
) -> String {
    let mut out = chrome_trace(trace, workers_per_node);
    if decisions.is_empty() {
        return out;
    }
    // Splice the instant events into the existing JSON array.
    let tail = out.rfind("]\n").unwrap_or(out.len());
    out.truncate(tail);
    if !trace.segments().is_empty() {
        // The last segment line has no trailing comma; add one.
        let last_line = out.trim_end().len();
        out.truncate(last_line);
        out.push_str(",\n");
    }
    for (i, d) in decisions.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\": \"switch {}->{}\", \"cat\": \"tuner\", \"ph\": \"i\", \"s\": \"p\", \
             \"ts\": {}, \"pid\": {}, \"tid\": 0, \
             \"args\": {{\"seq\": {}, \"step\": {}, \"scheduled\": {}, \"reason\": \"{}\"}}}}{}\n",
            d.from.name(),
            d.to.name(),
            d.scheduled,
            u32::MAX,
            d.seq,
            d.step,
            d.scheduled,
            d.reason.name(),
            comma(i, decisions.len())
        ));
    }
    out.push_str("]\n");
    out
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// A float literal that is always valid JSON (no NaN/inf, always a
/// fractional part so readers parse it as a number, not an integer).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::trace::SegmentKind;

    fn sample() -> (Trace, RunStats) {
        let mut tr = Trace::recording();
        tr.record(0, 0, 100, SegmentKind::Compute);
        tr.record(0, 100, 120, SegmentKind::Sched);
        tr.record(1, 0, 60, SegmentKind::Compute);
        tr.record(1, 60, 120, SegmentKind::Idle);
        let mut stats = RunStats::new(2, 1);
        stats.workers[0].lock_polls = 5;
        stats.workers[1].lock_polls = 0;
        stats.workers[0].iterations = 10;
        stats.nodes[0].lock_acquisitions = 7;
        (tr, stats)
    }

    #[test]
    fn report_aggregates_trace_and_counters() {
        let (tr, stats) = sample();
        let r = ActivityReport::build("GSS+SS (MPI+MPI)", &tr, &stats, 2);
        assert_eq!(r.makespan_ns, 120);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[0].totals.compute, 100);
        assert_eq!(r.workers[0].lock_polls, 5);
        assert_eq!(r.nodes[0].lock_acquisitions, 7);
        // mean 80, max 100 -> imbalance 0.25; stddev 20 -> cov 0.25.
        assert!((r.compute_imbalance - 0.25).abs() < 1e-12);
        assert!((r.compute_cov - 0.25).abs() < 1e-12);
        // Polls 5 -> bucket 3 ([4, 8)); polls 0 -> bucket 0.
        assert_eq!(r.lock_poll_histogram, vec![1, 0, 0, 1]);
    }

    #[test]
    fn json_is_well_formed() {
        let (tr, stats) = sample();
        let json = ActivityReport::build("a \"quoted\" label", &tr, &stats, 2).to_json();
        assert!(json.contains("\"label\": \"a \\\"quoted\\\" label\""));
        assert!(json.contains("\"lock_polls\": 5"));
        assert!(json.contains("\"lock_poll_histogram\": [1,0,0,1]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_emits_one_event_per_segment() {
        let (tr, _) = sample();
        let out = chrome_trace(&tr, 1);
        assert!(out.trim_start().starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert_eq!(out.matches("\"ph\": \"X\"").count(), tr.segments().len());
        // Worker 1 on 1 worker/node is pid 1.
        assert!(out.contains("\"pid\": 1, \"tid\": 1"));
        // 100 ns -> 0.1 us.
        assert!(out.contains("\"ts\": 0.1"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn log2_histogram_buckets() {
        assert_eq!(log2_histogram([0, 1, 2, 3, 4, 7, 8]), vec![1, 1, 2, 2, 1]);
        assert!(log2_histogram([]).is_empty());
    }

    #[test]
    fn recovery_rows_serialise() {
        let (tr, mut stats) = sample();
        stats.workers[0].reclaims = 1;
        stats.nodes[0].lock_revocations = 1;
        let events = [
            RecoveryEvent::Crash { rank: 1, at_ns: 40, holding_lock: true },
            RecoveryEvent::LockRepair { node: 0, dead_holder: 1, by: 0, at_ns: 90 },
        ];
        let r = ActivityReport::build("chaos", &tr, &stats, 2).with_recovery(&events);
        assert_eq!(r.workers[0].reclaims, 1);
        assert_eq!(r.nodes[0].lock_revocations, 1);
        let json = r.to_json();
        assert!(json.contains("\"kind\": \"crash-holding-lock\""));
        assert!(json.contains("\"kind\": \"lock-repair\""));
        assert!(json.contains("\"reclaims\": 1"));
        assert!(json.contains("\"lock_revocations\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_overlays_recovery_instants() {
        let (tr, _) = sample();
        let events = [
            RecoveryEvent::Crash { rank: 1, at_ns: 50, holding_lock: false },
            RecoveryEvent::Reclaim { by: 0, owner: 1, lo: 4, hi: 8, at_ns: 110 },
        ];
        let out = chrome_trace_with_recovery(&tr, 1, &events);
        assert_eq!(out.matches("\"ph\": \"X\"").count(), tr.segments().len());
        assert_eq!(out.matches("\"ph\": \"i\"").count(), 2);
        assert!(out.contains("\"name\": \"reclaim\""));
        // The reclaim marker sits on the reclaimer's track.
        assert!(out.contains("\"ph\": \"i\", \"s\": \"t\", \"ts\": 0.11, \"pid\": 0, \"tid\": 0"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        // Without events the output is exactly the plain trace.
        assert_eq!(chrome_trace_with_recovery(&tr, 1, &[]), chrome_trace(&tr, 1));
    }

    #[test]
    fn service_report_reshapes_snapshot() {
        let mut snap = StatsSnapshot { uptime_ns: 5_000, ..Default::default() };
        snap.journal = dls_service::JournalTotals {
            enabled: true,
            epoch: 2,
            journal_records: 40,
            journal_bytes: 1_024,
            fsyncs: 5,
            snapshots: 1,
            segments: 2,
        };
        snap.conns.push(dls_service::ConnSnapshot {
            conn: 0,
            worker: 2,
            fetches: 4,
            chunks: 6,
            iterations: 300,
            requests: 11,
            ..Default::default()
        });
        snap.conns.push(dls_service::ConnSnapshot {
            conn: 1,
            worker: u32::MAX, // never identified itself -> falls back to conn id
            iterations: 100,
            ..Default::default()
        });
        snap.jobs.push(dls_service::JobSnapshot {
            job: 7,
            chunks_granted: 6,
            step: 6,
            fetches: 4,
            empty_polls: 2,
            leases_reclaimed: 1,
            ..Default::default()
        });
        let r = service_report("net GSS", &snap);
        assert_eq!(r.makespan_ns, 5_000);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(r.workers[0].worker, 2);
        assert_eq!(r.workers[1].worker, 1);
        assert_eq!(r.workers[0].sub_chunks, 6);
        assert_eq!(r.nodes[0].node, 7);
        assert_eq!(r.nodes[0].lock_revocations, 1);
        // iterations 300/100: mean 200, max 300 -> imbalance 0.5, cov 0.5.
        assert!((r.compute_imbalance - 0.5).abs() < 1e-12);
        assert!((r.compute_cov - 0.5).abs() < 1e-12);
        // Journal counters ride through unchanged.
        let j = r.journal.expect("service reports carry journal stats");
        assert!(j.enabled);
        assert_eq!(j.epoch, 2);
        assert_eq!(j.records, 40);
        assert_eq!(j.fsyncs, 5);
        let json = r.to_json();
        assert!(json.contains("\"label\": \"net GSS\""));
        assert!(json.contains(
            "\"journal\": {\"enabled\": true, \"epoch\": 2, \"records\": 40, \
             \"bytes\": 1024, \"fsyncs\": 5, \"snapshots\": 1, \"segments\": 2}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    fn decisions() -> Vec<dls::Decision> {
        use dls::{Kind, SchedKind, SwitchReason};
        vec![
            dls::Decision {
                seq: 0,
                step: 8,
                scheduled: 8,
                from: SchedKind::Fixed(Kind::SS),
                to: SchedKind::Fixed(Kind::GSS),
                reason: SwitchReason::Overhead,
            },
            dls::Decision {
                seq: 1,
                step: 24,
                scheduled: 350,
                from: SchedKind::Fixed(Kind::GSS),
                to: SchedKind::Af,
                reason: SwitchReason::Imbalance,
            },
        ]
    }

    #[test]
    fn decision_rows_serialise() {
        let (tr, stats) = sample();
        let r = ActivityReport::build("AUTO", &tr, &stats, 2).with_decisions(&decisions());
        assert_eq!(r.decisions.len(), 2);
        let json = r.to_json();
        assert!(json.contains(
            "{\"seq\": 0, \"step\": 8, \"scheduled\": 8, \"from\": \"SS\", \
             \"to\": \"GSS\", \"reason\": \"overhead\"}"
        ));
        assert!(json.contains("\"to\": \"AF\", \"reason\": \"imbalance\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn service_report_collects_decision_timeline() {
        let mut snap = StatsSnapshot::default();
        snap.jobs.push(dls_service::JobSnapshot {
            job: 0,
            mode: Some(dls::SchedKind::Auto),
            kind: Some(dls::SchedKind::Af),
            decisions: decisions(),
            ..Default::default()
        });
        let r = service_report("net AUTO", &snap);
        assert_eq!(r.decisions, decisions());
        let json = r.to_json();
        assert!(json.contains("\"decisions\": [\n    {\"seq\": 0"));
    }

    #[test]
    fn chrome_trace_overlays_decision_instants() {
        let (tr, _) = sample();
        let out = chrome_trace_with_decisions(&tr, 1, &decisions());
        assert_eq!(out.matches("\"ph\": \"X\"").count(), tr.segments().len());
        assert_eq!(out.matches("\"ph\": \"i\"").count(), 2);
        assert!(out.contains("\"name\": \"switch SS->GSS\""));
        assert!(out.contains("\"cat\": \"tuner\""));
        // The tuner track is its own process group, iteration-domain ts.
        assert!(out.contains(&format!("\"ts\": 350, \"pid\": {}, \"tid\": 0", u32::MAX)));
        assert!(out.contains("\"reason\": \"imbalance\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        // Without decisions the output is exactly the plain trace.
        assert_eq!(chrome_trace_with_decisions(&tr, 1, &[]), chrome_trace(&tr, 1));
    }

    #[test]
    fn floats_always_json_numbers() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
    }
}
