//! Figure-series helpers: run the paper's experiment grids and return
//! the rows each figure plots.
//!
//! Figures 4-7 of the paper share one layout: for a fixed inter-node
//! technique `X` (STATIC, GSS, TSS, FAC2 respectively), plot the
//! parallel loop time over node counts {2, 4, 8, 16} for every
//! intra-node technique `Y` in {STATIC, SS, GSS, TSS, FAC2}, comparing
//! MPI+OpenMP (where the Intel OpenMP runtime supports `Y`) against the
//! proposed MPI+MPI approach — sub-figure (a) Mandelbrot, (b) PSIA.

use crate::schedule::HierSchedule;
use cluster_sim::MachineParams;
use dls::Kind;
use hier::{Approach, HierSpec};
use workloads::CostTable;

/// The node counts of the paper's x-axis.
pub const NODE_COUNTS: [u32; 4] = [2, 4, 8, 16];
/// Workers per node used throughout the paper's evaluation.
pub const WORKERS_PER_NODE: u32 = 16;
/// The intra-node techniques of each figure's five panels.
pub const INTRA_PANEL: [Kind; 5] = [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2];

/// One measured point of a figure.
#[derive(Clone, Copy, Debug)]
pub struct FigurePoint {
    /// Inter-node technique.
    pub inter: Kind,
    /// Intra-node technique.
    pub intra: Kind,
    /// Implementation approach.
    pub approach: Approach,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Parallel loop time in seconds (the figure's y-axis).
    pub seconds: f64,
}

/// Run one figure's full grid for one application (one sub-figure):
/// every intra panel x node count x approach. Combinations the Intel
/// OpenMP runtime cannot express (TSS/FAC2 intra under MPI+OpenMP) are
/// skipped, exactly as in the paper.
pub fn figure_grid(
    inter: Kind,
    table: &CostTable,
    machine: MachineParams,
    workers_per_node: u32,
) -> Vec<FigurePoint> {
    let mut points = Vec::new();
    for intra in INTRA_PANEL {
        for approach in Approach::ALL {
            let spec = HierSpec::new(inter, intra);
            if approach == Approach::MpiOpenMp && !spec.supported_by_openmp() {
                continue;
            }
            for nodes in NODE_COUNTS {
                let schedule = HierSchedule::builder()
                    .inter(inter)
                    .intra(intra)
                    .approach(approach)
                    .nodes(nodes)
                    .workers_per_node(workers_per_node)
                    .machine(machine)
                    .build();
                let result = schedule.simulate(table);
                points.push(FigurePoint {
                    inter,
                    intra,
                    approach,
                    nodes,
                    seconds: result.seconds(),
                });
            }
        }
    }
    points
}

/// Fetch one point from a grid.
pub fn point(points: &[FigurePoint], intra: Kind, approach: Approach, nodes: u32) -> Option<f64> {
    points
        .iter()
        .find(|p| p.intra == intra && p.approach == approach && p.nodes == nodes)
        .map(|p| p.seconds)
}

/// Render a grid as the text table the `figures` binary prints: one
/// block per intra panel, one row per approach, one column per node
/// count — mirroring the sub-plot layout of the paper's figures.
pub fn render_grid(title: &str, points: &[FigurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:=<width$}\n", "", width = title.len()));
    for intra in INTRA_PANEL {
        let any: Vec<&FigurePoint> = points.iter().filter(|p| p.intra == intra).collect();
        if any.is_empty() {
            continue;
        }
        out.push_str(&format!("\n  intra-node: {intra}\n"));
        out.push_str("    approach      ");
        for n in NODE_COUNTS {
            out.push_str(&format!("{n:>4} nodes  "));
        }
        out.push('\n');
        for approach in Approach::ALL {
            let row: Vec<Option<f64>> =
                NODE_COUNTS.iter().map(|&n| point(points, intra, approach, n)).collect();
            if row.iter().all(Option::is_none) {
                out.push_str(&format!(
                    "    {:<12}  (not supported by the Intel OpenMP runtime)\n",
                    approach.name()
                ));
                continue;
            }
            out.push_str(&format!("    {:<12}", approach.name()));
            for s in row {
                match s {
                    Some(s) => out.push_str(&format!("{s:>9.2}s  ")),
                    None => out.push_str("        -  "),
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::synthetic::Synthetic;

    fn small_grid() -> Vec<FigurePoint> {
        let w = Synthetic::uniform(3_000, 100, 2_000, 5);
        let table = CostTable::build(&w);
        figure_grid(Kind::GSS, &table, MachineParams::default(), 4)
    }

    #[test]
    fn grid_has_expected_points() {
        let g = small_grid();
        // 5 intra panels x 4 node counts x 2 approaches, minus the
        // OpenMP-unsupported TSS/FAC2 panels (4 points each).
        assert_eq!(g.len(), 5 * 4 * 2 - 2 * 4);
    }

    #[test]
    fn openmp_rows_absent_for_tss_fac2() {
        let g = small_grid();
        for intra in [Kind::TSS, Kind::FAC2] {
            assert!(point(&g, intra, Approach::MpiOpenMp, 2).is_none());
            assert!(point(&g, intra, Approach::MpiMpi, 2).is_some());
        }
    }

    #[test]
    fn render_contains_all_panels() {
        let g = small_grid();
        let s = render_grid("Figure X", &g);
        for intra in INTRA_PANEL {
            assert!(s.contains(&format!("intra-node: {intra}")), "{s}");
        }
        assert!(s.contains("not supported"));
    }
}
