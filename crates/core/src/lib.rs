//! # hdls — Hierarchical Dynamic Loop Self-Scheduling
//!
//! A Rust reproduction of *"Hierarchical Dynamic Loop Self-Scheduling on
//! Distributed-Memory Systems Using an MPI+MPI Approach"* (Eleliemy &
//! Ciorba, 2019): two-level dynamic loop self-scheduling where compute
//! nodes obtain chunks from a global work queue and the workers of a
//! node obtain sub-chunks from a node-local queue — implemented either
//! the paper's proposed way (MPI+MPI: the local queue is an MPI-3
//! shared-memory window, the fastest worker refills it) or the baseline
//! way (MPI+OpenMP: one process per node plus a thread team with an
//! implicit barrier after every chunk).
//!
//! This crate is the public facade; the machinery lives in the
//! re-exported subsystem crates:
//!
//! * [`dls`] — the DLS techniques (STATIC, SS, GSS, TSS, FAC/FAC2,
//!   TFSS, FSC, RND, WF, AWF) in the distributed chunk-calculation
//!   formulation.
//! * [`mpisim`] — a thread-backed MPI-3 subset (communicators, RMA
//!   windows, shared-memory windows, `MPI_Win_lock`).
//! * [`cluster_sim`] — a deterministic virtual-time cluster model
//!   (network, lock polling, barriers).
//! * [`workloads`] — Mandelbrot and PSIA (spin images) with exact
//!   per-iteration costs, plus synthetic distributions.
//! * [`hier`] — the two-level executors on both backends.
//! * [`dls_service`] — the same global queue as a networked service:
//!   a TCP chunk server with leases, batching and backpressure, plus
//!   the blocking client the fifth backend
//!   ([`HierSchedule::run_live_net`]) and the multi-process workers
//!   speak.
//!
//! ## Quickstart
//!
//! ```
//! use hdls::prelude::*;
//!
//! // GSS across nodes, STATIC within each node, the paper's proposed
//! // MPI+MPI implementation, on 4 nodes x 4 workers.
//! let schedule = HierSchedule::builder()
//!     .inter(Kind::GSS)
//!     .intra(Kind::STATIC)
//!     .approach(Approach::MpiMpi)
//!     .nodes(4)
//!     .workers_per_node(4)
//!     .build();
//!
//! // Virtual-time run (deterministic, models the full cluster):
//! let workload = Synthetic::uniform(10_000, 100, 1_000, 42);
//! let table = CostTable::build(&workload);
//! let result = schedule.simulate(&table);
//! assert_eq!(result.stats.total_iterations, 10_000);
//!
//! // Real-thread run (actually executes the kernel):
//! let live = schedule.run_live(&workload);
//! assert_eq!(live.stats.total_iterations, 10_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
// Counters cross the facade as u64/u32; a narrowing `as` cast here could
// silently corrupt an exported report. Same audit discipline as `dls`.
#![cfg_attr(not(test), deny(clippy::cast_possible_truncation))]

pub mod export;
pub mod figures;
pub mod report;
pub mod schedule;

pub use cluster_sim;
pub use dls;
pub use dls_service;
pub use hier;
pub use mpisim;
pub use resilience;
pub use workloads;

pub use schedule::{HierSchedule, HierScheduleBuilder};

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::export::{
        chrome_trace, chrome_trace_with_decisions, chrome_trace_with_recovery, service_report,
        ActivityReport,
    };
    pub use crate::figures::{self, FigurePoint};
    pub use crate::report::ScalingStudy;
    pub use crate::schedule::{HierSchedule, HierScheduleBuilder};
    pub use cluster_sim::{MachineParams, SimTopology};
    pub use dls::{Kind, LoopSpec, Technique};
    pub use hier::live::LiveResult;
    pub use hier::sim::SimResult;
    pub use hier::{Approach, HierSpec};
    pub use resilience::{FaultKind, FaultPlan, RecoveryEvent};
    pub use workloads::synthetic::Synthetic;
    pub use workloads::{CostTable, Mandelbrot, Psia, Workload};
}
