//! The three seeded-broken protocol variants must each (a) produce a
//! model-level counterexample, and (b) replay through the `rma-check`
//! epoch/race pipeline to the violation kind the corresponding RMA
//! mistake would show in a recorded run.

use dls::Kind;
use model_check::explore::{explore, Options};
use model_check::model::{Config, Variant, Violation};
use model_check::replay::replay;
use rma_check::ViolationKind;

/// Deciding to refill without holding the window lock: two ranks
/// elect themselves refiller. The replayed log shows the flag
/// accesses outside any epoch.
#[test]
fn refill_without_lock_caught_and_replays_to_access_outside_epoch() {
    let cfg = Config::new(1, 3, 8, Kind::SS, Kind::SS).with_variant(Variant::RefillWithoutLock);
    let out = explore(&cfg, &Options::default());
    let cex = out.violation.expect("must find the double refill");
    assert!(
        matches!(
            cex.violation,
            Violation::ConcurrentRefill { .. } | Violation::RefillWhileNonEmpty { .. }
        ),
        "{:?}",
        cex.violation
    );

    let r = replay(&cfg, &cex.trace);
    assert_eq!(r.violation.as_ref(), Some(&cex.violation));
    let report = r.check();
    assert!(
        report.has(ViolationKind::AccessOutsideEpoch),
        "expected access-outside-epoch:\n{}",
        report.render()
    );
}

/// The global FAA split into get + put: two fetchers read the same
/// scheduling pair and claim the same chunk (deposit overlap). The
/// replayed log shows the get/put race on the global counter.
#[test]
fn non_atomic_faa_caught_and_replays_to_data_race() {
    let cfg = Config::new(2, 1, 12, Kind::SS, Kind::SS).with_variant(Variant::NonAtomicFaa);
    let out = explore(&cfg, &Options::default());
    let cex = out.violation.expect("must find the lost update");
    assert!(matches!(cex.violation, Violation::DepositOverlap { .. }), "{:?}", cex.violation);

    let r = replay(&cfg, &cex.trace);
    let report = r.check();
    assert!(
        report.has(ViolationKind::DataRace),
        "expected data race on the global counter:\n{}",
        report.render()
    );
    // The race is on the global window, not the node queues.
    assert!(report.violations.iter().any(|v| v.kind == ViolationKind::DataRace && v.win == 0));
}

/// A taker that forgets MPI_Win_unlock: the node wedges behind the
/// dead lock. The replayed log ends with the epoch still open.
#[test]
fn lost_unlock_deadlocks_and_replays_to_epoch_leak() {
    // STATIC inter: the single deposit of 4 iterations leaves
    // leftovers, so a peer's probe-and-take (where the unlock is
    // forgotten) actually happens.
    let cfg = Config::new(1, 2, 4, Kind::STATIC, Kind::SS).with_variant(Variant::LostUnlock);
    let out = explore(&cfg, &Options::default());
    let cex = out.violation.expect("must find the deadlock");
    let Violation::Deadlock { ref stuck } = cex.violation else {
        panic!("expected deadlock, got {:?}", cex.violation);
    };
    assert!(!stuck.is_empty());

    let r = replay(&cfg, &cex.trace);
    // Terminal-state counterexample: the trace itself is legal, the
    // state it reaches is the violation.
    assert!(r.violation.is_none());
    let report = r.check();
    assert!(
        report.has(ViolationKind::EpochLeak),
        "expected epoch leak on the node window:\n{}",
        report.render()
    );
    assert!(report.violations.iter().any(|v| v.kind == ViolationKind::EpochLeak && v.win >= 1));
}

/// Counterexamples are minimal: BFS order means no shorter trace
/// reaches a violation. Sanity-check the shortest known schedules.
#[test]
fn counterexamples_are_short() {
    // Double refill needs two observe + two commit steps minimum.
    let cfg = Config::new(1, 3, 8, Kind::SS, Kind::SS).with_variant(Variant::RefillWithoutLock);
    let cex = explore(&cfg, &Options::default()).violation.expect("found");
    assert!(cex.trace.len() <= 6, "not minimal: {} steps", cex.trace.len());

    // The lost update needs both fetchers through probe, crit,
    // read, write, lock, deposit.
    let cfg = Config::new(2, 1, 12, Kind::SS, Kind::SS).with_variant(Variant::NonAtomicFaa);
    let cex = explore(&cfg, &Options::default()).violation.expect("found");
    assert!(cex.trace.len() <= 12, "not minimal: {} steps", cex.trace.len());
}

/// The correct variant at the same scopes is clean — the bugs above
/// are what the checker reacts to, not the scope.
#[test]
fn same_scopes_clean_without_the_bugs() {
    for (nodes, rpn, n, inter) in
        [(1u8, 3u8, 8u8, Kind::SS), (2, 1, 12, Kind::SS), (1, 2, 4, Kind::STATIC)]
    {
        let cfg = Config::new(nodes, rpn, n, inter, Kind::SS);
        let out =
            explore(&cfg, &Options { wait_bound: Some(cfg.wait_bound()), ..Options::default() });
        assert!(out.violation.is_none(), "{nodes}x{rpn}x{n}: {:?}", out.violation);
    }
}
