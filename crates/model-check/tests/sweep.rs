//! The bounded verification sweep the protocol's correctness claims
//! rest on: every paper technique pair, every interleaving, at small
//! scope.

use dls::Kind;
use model_check::explore::{explore, run_serial, Options};
use model_check::model::Config;

/// All 25 {STATIC, SS, GSS, TSS, FAC2}^2 pairs at 2 nodes x 2 ranks,
/// n = 12: full exploration (no reduction, so the liveness verdict is
/// over the complete graph) plus the FCFS bypass bound.
#[test]
fn all_paper_pairs_clean_at_2x2x12() {
    for inter in Kind::PAPER {
        for intra in Kind::PAPER {
            let cfg = Config::new(2, 2, 12, inter, intra);
            let out = explore(
                &cfg,
                &Options { wait_bound: Some(cfg.wait_bound()), ..Options::default() },
            );
            assert!(out.violation.is_none(), "{inter}/{intra}: {:?}", out.violation);
            assert!(!out.capped, "{inter}/{intra}: state cap hit");
            assert!(out.terminals > 0, "{inter}/{intra}: no terminal state");
            assert!(
                out.max_wait_depth <= cfg.wait_bound(),
                "{inter}/{intra}: bypass bound exceeded"
            );
        }
    }
}

/// Partial-order reduction must agree with the full exploration on
/// every pair (and actually reduce).
#[test]
fn por_verdicts_match_full_at_2x2x12() {
    let mut reduced_any = false;
    for inter in Kind::PAPER {
        for intra in Kind::PAPER {
            let cfg = Config::new(2, 2, 12, inter, intra);
            let out = explore(
                &cfg,
                &Options { por: true, wait_bound: Some(cfg.wait_bound()), ..Options::default() },
            );
            assert!(out.violation.is_none(), "{inter}/{intra}: {:?}", out.violation);
            assert!(out.reduction_ratio() <= 1.0);
            reduced_any |= out.fired_total < out.enabled_total;
        }
    }
    assert!(reduced_any, "POR never pruned anything");
}

/// The contended scope: SS/SS (maximal lock traffic — every sub-chunk
/// is one iteration) at 2 nodes x 3 ranks, n = 16, with POR. Verifies
/// the bypass bound at depth 2 and around 1M states of interleavings.
#[test]
fn ss_ss_clean_at_2x3x16() {
    let cfg = Config::new(2, 3, 16, Kind::SS, Kind::SS);
    let out = explore(
        &cfg,
        &Options { por: true, wait_bound: Some(cfg.wait_bound()), ..Options::default() },
    );
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert!(!out.capped);
    assert!(out.states > 100_000, "expected a large space, got {}", out.states);
    assert_eq!(out.max_wait_depth, cfg.wait_bound(), "depth-2 waits must be reachable");
}

/// Odd shapes: single node, single rank per node, n not divisible by
/// anything relevant.
#[test]
fn degenerate_topologies_clean() {
    for (nodes, rpn, n) in [(1u8, 1u8, 7u8), (1, 3, 11), (2, 1, 13)] {
        for inter in [Kind::GSS, Kind::TSS] {
            let cfg = Config::new(nodes, rpn, n, inter, Kind::FAC2);
            let out = explore(
                &cfg,
                &Options { wait_bound: Some(cfg.wait_bound()), ..Options::default() },
            );
            assert!(out.violation.is_none(), "{nodes}x{rpn}x{n} {inter}: {:?}", out.violation);
        }
    }
}

/// Every pair's serial schedule terminates with exact coverage — the
/// quick smoke the full sweep subsumes, kept for fast failure.
#[test]
fn serial_schedules_cover_exactly_once() {
    for inter in Kind::PAPER {
        for intra in Kind::PAPER {
            let cfg = Config::new(2, 3, 17, inter, intra);
            let (_, s) =
                run_serial(&cfg).unwrap_or_else(|c| panic!("{inter}/{intra}: {:?}", c.violation));
            assert_eq!(s.executed, cfg.full_mask(), "{inter}/{intra}");
        }
    }
}
