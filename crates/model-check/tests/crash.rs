//! Bounded-crash model checking of the recovery protocol: the graded
//! [`Recovery`] levels pin *why* each piece of the resilience
//! subsystem exists. Without recovery a dead lock holder deadlocks
//! its node; with lock repair and refill failover but **no leases**,
//! a refiller dying between its global FAA and its deposit provably
//! loses the fetched chunk (the pinned `LostIterations`
//! counterexample); with leases the protocol is exactly-once and
//! deadlock-free over every interleaving and crash placement the
//! budget allows.

use dls::Kind;
use model_check::explore::{explore, Options};
use model_check::model::{Action, Config, Pc, Recovery, Violation};
use model_check::replay::replay;

/// The pinned counterexample for the unpatched (lease-free) recovery
/// protocol. Smallest scope that shows it: 1 node x 2 ranks, STATIC
/// inter (one global chunk of all 4 iterations), one crash. The
/// refiller claims the chunk with its FAA, dies before depositing,
/// the survivor fails the refill over, re-fetches an exhausted global
/// queue and terminates — with every iteration lost.
#[test]
fn lease_free_recovery_loses_the_fetched_chunk() {
    let cfg = Config::new(1, 2, 4, Kind::STATIC, Kind::SS)
        .with_crashes(1)
        .with_recovery(Recovery::LeaseFree);
    let out = explore(&cfg, &Options::default());
    let cex = out.violation.expect("the lease-free protocol must lose iterations");
    assert_eq!(
        cex.violation,
        Violation::LostIterations { missing: 0b1111 },
        "expected the whole STATIC chunk lost"
    );
    // BFS counterexamples are minimal; the shortest schedule is
    // refiller-elect + fetch + crash + survivor failover + re-fetch
    // + terminate.
    assert!(cex.trace.len() <= 12, "not minimal: {} steps", cex.trace.len());

    // The trace replays to an all-terminated state in which nothing
    // was ever executed, with the crash landing on the undeposited
    // chunk.
    let r = replay(&cfg, &cex.trace);
    assert!(r.violation.is_none(), "terminal-state violation: the trace itself is legal");
    assert_eq!(r.final_state.executed, 0, "no iteration may have run");
    assert!(
        r.steps.iter().any(|s| matches!(
            s.action,
            Action::Crash { victim: 0, holding_lock: false }
        ) || matches!(
            s.action,
            Action::Crash { victim: 1, holding_lock: false }
        )),
        "trace must contain the refiller crash:\n{}",
        r.render(&cfg)
    );
    assert!(
        r.steps.iter().any(|s| matches!(s.action, Action::RefillFailover { .. })),
        "the survivor must fail the refill over (that is what makes the run terminate):\n{}",
        r.render(&cfg)
    );
    assert!(
        (0..cfg.n_procs())
            .all(|p| matches!(r.final_state.procs[p as usize], Pc::Done | Pc::Crashed { .. })),
        "every process must have terminated or died"
    );
}

/// Without any recovery, a rank that dies holding the window lock
/// wedges its node: the peers enqueue behind a corpse and the
/// explorer reports the (minimal) deadlock.
#[test]
fn crash_holding_the_lock_without_repair_deadlocks() {
    let cfg = Config::new(1, 3, 8, Kind::SS, Kind::SS).with_crashes(1);
    let out = explore(&cfg, &Options::default());
    let cex = out.violation.expect("a dead lock holder must deadlock the node");
    let Violation::Deadlock { ref stuck } = cex.violation else {
        panic!("expected deadlock, got {:?}", cex.violation);
    };
    // Both survivors are wedged behind the corpse; the corpse itself
    // is dead, not deadlocked.
    assert_eq!(stuck.len(), 2, "both live peers stuck: {stuck:?}");
    let r = replay(&cfg, &cex.trace);
    assert!(
        r.steps.iter().any(|s| matches!(s.action, Action::Crash { holding_lock: true, .. })),
        "the crash must have happened inside the critical section:\n{}",
        r.render(&cfg)
    );
}

/// Same scope as the deadlock above, but with the repair transition
/// modelled: the front waiter revokes the dead holder's grant and the
/// run completes exactly-once. Lock repair alone is sound — it is the
/// *lease* that the loss counterexample above needs.
#[test]
fn lock_repair_unwedges_the_dead_holder() {
    let cfg =
        Config::new(1, 3, 8, Kind::SS, Kind::SS).with_crashes(1).with_recovery(Recovery::Leases);
    let out = explore(&cfg, &Options::default());
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert!(!out.capped);
    assert!(out.terminals > 0);
}

/// The full patch, swept: every interleaving and every crash
/// placement of a single crash, across technique pairs and shapes
/// (always leaving at least one survivor per node — whole-node death
/// is outside the node-local lease scope). No deadlock, no livelock,
/// no lost or doubly-executed iteration.
#[test]
fn leased_recovery_is_exactly_once_and_deadlock_free() {
    for (nodes, rpn, n) in [(1u8, 2u8, 6u8), (1, 3, 8), (2, 2, 8)] {
        for (inter, intra) in [
            (Kind::STATIC, Kind::SS),
            (Kind::SS, Kind::SS),
            (Kind::GSS, Kind::SS),
            (Kind::TSS, Kind::FAC2),
            (Kind::FAC2, Kind::GSS),
        ] {
            let cfg = Config::new(nodes, rpn, n, inter, intra)
                .with_crashes(1)
                .with_recovery(Recovery::Leases);
            let out = explore(&cfg, &Options::default());
            assert!(
                out.violation.is_none(),
                "{nodes}x{rpn}x{n} {inter}/{intra}: {:?}",
                out.violation
            );
            assert!(!out.capped, "{nodes}x{rpn}x{n} {inter}/{intra}: capped");
            assert!(out.terminals > 0, "{nodes}x{rpn}x{n} {inter}/{intra}: no terminal");
        }
    }
}

/// Two crashes in sequence — including a repairer that itself dies
/// holding the repaired lock, and two successive dead refillers —
/// still recover, as long as someone survives.
#[test]
fn two_crashes_still_recovered() {
    let cfg =
        Config::new(1, 3, 6, Kind::GSS, Kind::SS).with_crashes(2).with_recovery(Recovery::Leases);
    let out = explore(&cfg, &Options::default());
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert!(!out.capped);
    assert!(out.terminals > 0);
}

/// A zero-crash budget is bit-identical to the fault-free model: the
/// recovery branches are dead code without a corpse to react to.
#[test]
fn recovery_branches_are_inert_without_crashes() {
    let cfg = Config::new(2, 2, 12, Kind::GSS, Kind::SS);
    let base = explore(&cfg, &Options::default());
    let patched = explore(
        &Config::new(2, 2, 12, Kind::GSS, Kind::SS).with_recovery(Recovery::Leases),
        &Options::default(),
    );
    assert!(base.violation.is_none() && patched.violation.is_none());
    assert_eq!(base.states, patched.states);
    assert_eq!(base.transitions, patched.transitions);
    assert_eq!(base.terminals, patched.terminals);
}
