//! Exhaustively explore the two-level queue protocol over every
//! paper technique pair, print the state-space statistics, then
//! demonstrate the three seeded-broken variants producing replayable
//! counterexamples.
//!
//! ```text
//! cargo run --release -p model-check --example explore
//! ```

use dls::Kind;
use model_check::explore::{explore, Options};
use model_check::model::{Config, Variant};
use model_check::replay::replay;

fn main() {
    let (nodes, rpn, n) = (2u8, 2u8, 12u8);
    println!("== exhaustive sweep: {nodes} nodes x {rpn} ranks, n = {n} ==\n");
    println!(
        "{:<14} {:>9} {:>11} {:>10} {:>9} {:>9}",
        "inter/intra", "states", "transitions", "por-states", "reduction", "max-wait"
    );
    for inter in Kind::PAPER {
        for intra in Kind::PAPER {
            let cfg = Config::new(nodes, rpn, n, inter, intra);
            let bound = cfg.wait_bound();
            let full = explore(&cfg, &Options { wait_bound: Some(bound), ..Options::default() });
            let por = explore(
                &cfg,
                &Options { por: true, wait_bound: Some(bound), ..Options::default() },
            );
            assert!(full.violation.is_none(), "{inter}/{intra}: {:?}", full.violation);
            assert!(por.violation.is_none(), "{inter}/{intra}: {:?}", por.violation);
            println!(
                "{:<14} {:>9} {:>11} {:>10} {:>8.1}% {:>5}/{:<3}",
                format!("{inter}/{intra}"),
                full.states,
                full.transitions,
                por.states,
                100.0 * por.reduction_ratio(),
                full.max_wait_depth,
                bound,
            );
        }
    }
    println!(
        "\nEvery pair: safety (exactly-once, refill discipline), deadlock- and\n\
         livelock-freedom verified over the full graph; FCFS lock bypass never\n\
         exceeded the ranks_per_node - 1 bound."
    );

    println!("\n== seeded-broken variants ==");
    let demos = [
        (Variant::RefillWithoutLock, Config::new(1, 3, 8, Kind::SS, Kind::SS)),
        (Variant::NonAtomicFaa, Config::new(2, 1, 12, Kind::SS, Kind::SS)),
        (Variant::LostUnlock, Config::new(1, 2, 4, Kind::STATIC, Kind::SS)),
    ];
    for (variant, base) in demos {
        let cfg = base.with_variant(variant);
        let out = explore(&cfg, &Options::default());
        let cex = out.violation.expect("seeded bug must be found");
        println!("\n-- {variant:?}: {:?} after exploring {} states --", cex.violation, out.states);
        println!("shortest counterexample ({} steps):", cex.trace.len());
        let r = replay(&cfg, &cex.trace);
        print!("{}", r.render(&cfg));
        let report = r.check();
        println!("rma-check verdict on the replayed access log:");
        for v in &report.violations {
            println!("  {} (win {}, rank {}): {}", v.kind, v.win, v.rank, v.detail);
        }
    }
}
