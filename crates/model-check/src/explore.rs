//! Exhaustive explicit-state exploration of a [`Config`]'s transition
//! system: BFS with state hashing, optional ample-set partial-order
//! reduction, and a strongly-connected-component pass for fair
//! non-progress cycles (livelock).
//!
//! ## What is verified
//!
//! * **Safety** — every transition's local checks (double execution,
//!   deposit overlap, refill discipline) plus the terminal coverage
//!   check: all processes `Done` implies every iteration executed.
//! * **Deadlock** — a state with no enabled transition and a process
//!   not yet `Done`.
//! * **Livelock** — a cycle with no scheduling progress that some
//!   weakly-fair scheduler can follow forever. Because `executed`,
//!   `deposited` and the global pair only grow, every edge inside an
//!   SCC is automatically non-progress; the cycle is a real livelock
//!   only if every process enabled at *all* of the SCC's states also
//!   steps inside it (otherwise fairness forces an escape — e.g. the
//!   legitimate re-probe loop of workers waiting out a peer's refill
//!   is escaped by the always-enabled refiller).
//! * **Bounded bypass** — the FCFS lock admits at most
//!   `ranks_per_node - 1` grants between a rank's enqueue and its own
//!   grant; the explorer tracks the maximum observed depth and can
//!   enforce the bound.
//!
//! BFS means the first violation found has a shortest-possible trace —
//! counterexamples are minimal by construction.
//!
//! ## Partial-order reduction
//!
//! With `por` on (correct variant only), a state may be expanded with
//! only the enabled transitions of a single node, when (a) no process
//! of that node is touching the global queue (`Fetch` / `FaaWrite` —
//! global FAAs of different nodes race for chunks and must be
//! interleaved), and (b) at least one of those transitions leads to an
//! unvisited state (the cycle proviso, preventing action ignoring).
//! Under (a), every transition of the candidate node is independent of
//! every other node's transitions: the lock, flags and queue are
//! node-private, and the bitmap slots they touch come from disjoint
//! global chunks. The reduction is disabled for broken variants, whose
//! counterexamples live exactly in the cross-node conflicts POR would
//! prune.

use crate::model::{Config, Pc, State, Variant, Violation};
use std::collections::{HashMap, VecDeque};

/// Exploration options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Enable ample-set partial-order reduction (correct variant only).
    pub por: bool,
    /// Run the SCC fair-cycle (livelock) pass after exploration.
    pub check_liveness: bool,
    /// Fail with [`Violation::WaitBoundExceeded`] if a lock enqueue
    /// observes more grants ahead than this.
    pub wait_bound: Option<u8>,
    /// Stop (and report `capped`) after this many states.
    pub max_states: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { por: false, check_liveness: true, wait_bound: None, max_states: 10_000_000 }
    }
}

/// A violation plus the shortest transition sequence (process ids from
/// the initial state) reaching it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What went wrong.
    pub violation: Violation,
    /// Process ids to step, in order, from [`Config::initial`]. The
    /// final step is the violating one (absent for terminal-state
    /// violations like deadlock, where the trace reaches the state
    /// itself).
    pub trace: Vec<u8>,
}

/// Exploration result and statistics.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions fired.
    pub transitions: u64,
    /// Terminal (all-`Done`) states reached.
    pub terminals: usize,
    /// Maximum lock-wait depth observed at any enqueue.
    pub max_wait_depth: u8,
    /// Sum over expanded states of the full enabled-set size.
    pub enabled_total: u64,
    /// Sum over expanded states of the ample-set size actually fired.
    pub fired_total: u64,
    /// Nontrivial SCCs examined by the livelock pass.
    pub sccs_checked: usize,
    /// First violation found (with its minimal trace), if any.
    pub violation: Option<Counterexample>,
    /// Exploration stopped at `max_states` (results incomplete).
    pub capped: bool,
}

impl Outcome {
    /// `fired_total / enabled_total`: 1.0 means no reduction.
    pub fn reduction_ratio(&self) -> f64 {
        if self.enabled_total == 0 {
            1.0
        } else {
            self.fired_total as f64 / self.enabled_total as f64
        }
    }
}

struct Search {
    arena: Vec<State>,
    index: HashMap<State, u32>,
    /// `(parent state, pid stepped)`; the root's parent is `u32::MAX`.
    parent: Vec<(u32, u8)>,
    /// Outgoing edges, kept only for the liveness pass.
    adj: Option<Vec<Vec<(u8, u32)>>>,
}

impl Search {
    fn trace_to(&self, mut idx: u32, last: Option<u8>) -> Vec<u8> {
        let mut t = Vec::new();
        while idx != u32::MAX {
            let (p, pid) = self.parent[idx as usize];
            if p != u32::MAX {
                t.push(pid);
            }
            idx = p;
        }
        t.reverse();
        t.extend(last);
        t
    }
}

/// Exhaustively explore `cfg` under `opts`.
pub fn explore(cfg: &Config, opts: &Options) -> Outcome {
    let mut out = Outcome::default();
    let mut search = Search {
        arena: vec![cfg.initial()],
        index: HashMap::new(),
        parent: vec![(u32::MAX, 0)],
        adj: opts.check_liveness.then(|| vec![Vec::new()]),
    };
    search.index.insert(search.arena[0], 0);
    let mut frontier: VecDeque<u32> = VecDeque::from([0]);
    // Crash transitions are global (any process, any node), so the
    // node-local independence argument behind the ample sets does not
    // hold under a crash budget.
    let por_active = opts.por && cfg.variant == Variant::Correct && cfg.crash_budget == 0;

    'bfs: while let Some(idx) = frontier.pop_front() {
        let s = search.arena[idx as usize];
        let enabled = cfg.enabled_pids(&s);
        if enabled.is_empty() {
            // A corpse is terminated, not stuck — deadlock is about
            // live processes that can never move again.
            let stuck: Vec<u8> = (0..cfg.n_procs())
                .filter(|&p| !matches!(s.procs[p as usize], Pc::Done | Pc::Crashed { .. }))
                .collect();
            if stuck.is_empty() {
                out.terminals += 1;
                if let Err(v) = cfg.check_terminal(&s) {
                    out.violation =
                        Some(Counterexample { violation: v, trace: search.trace_to(idx, None) });
                    break 'bfs;
                }
            } else {
                out.violation = Some(Counterexample {
                    violation: Violation::Deadlock { stuck },
                    trace: search.trace_to(idx, None),
                });
                break 'bfs;
            }
            continue;
        }
        out.enabled_total += enabled.len() as u64;

        // Compute successors; with POR, try each node's local-only
        // enabled set first and fall back to the full set when no
        // candidate passes the unvisited-successor proviso.
        type StepResult = Result<(State, crate::model::Action), Violation>;
        let mut chosen: Option<Vec<(u8, StepResult)>> = None;
        if por_active {
            for node in 0..cfg.nodes {
                let cand: Vec<u8> =
                    enabled.iter().copied().filter(|&p| cfg.node_of(p) == node).collect();
                if cand.is_empty()
                    || cand
                        .iter()
                        .any(|&p| matches!(s.procs[p as usize], Pc::Fetch | Pc::FaaWrite { .. }))
                {
                    continue;
                }
                let results: Vec<(u8, StepResult)> =
                    cand.iter().map(|&p| (p, cfg.step(&s, p, None))).collect();
                let fresh = results.iter().any(|(_, r)| match r {
                    Ok((ns, _)) => !search.index.contains_key(ns),
                    Err(_) => true,
                });
                if fresh {
                    chosen = Some(results);
                    break;
                }
            }
        }
        let results: Vec<(u8, StepResult)> = match chosen {
            Some(r) => r,
            None => enabled.iter().map(|&p| (p, cfg.step(&s, p, None))).collect(),
        };
        out.fired_total += results.len() as u64;

        for (pid, res) in results {
            match res {
                Err(v) => {
                    out.violation = Some(Counterexample {
                        violation: v,
                        trace: search.trace_to(idx, Some(pid)),
                    });
                    break 'bfs;
                }
                Ok((ns, action)) => {
                    if let crate::model::Action::Enqueue { depth } = action {
                        out.max_wait_depth = out.max_wait_depth.max(depth);
                        if let Some(bound) = opts.wait_bound {
                            if depth > bound {
                                out.violation = Some(Counterexample {
                                    violation: Violation::WaitBoundExceeded { pid, depth, bound },
                                    trace: search.trace_to(idx, Some(pid)),
                                });
                                break 'bfs;
                            }
                        }
                    }
                    out.transitions += 1;
                    let nidx = match search.index.get(&ns) {
                        Some(&i) => i,
                        None => {
                            if search.arena.len() >= opts.max_states {
                                out.capped = true;
                                break 'bfs;
                            }
                            let i = search.arena.len() as u32;
                            search.arena.push(ns);
                            search.index.insert(ns, i);
                            search.parent.push((idx, pid));
                            if let Some(adj) = &mut search.adj {
                                adj.push(Vec::new());
                            }
                            frontier.push_back(i);
                            i
                        }
                    };
                    if let Some(adj) = &mut search.adj {
                        adj[idx as usize].push((pid, nidx));
                    }
                }
            }
        }
    }

    out.states = search.arena.len();
    if out.violation.is_none() && !out.capped && opts.check_liveness {
        if let Some(adj) = &search.adj {
            check_livelock(cfg, &search, adj, &mut out);
        }
    }
    out
}

/// Fair non-progress cycle detection: Tarjan SCCs over the explored
/// graph, then the weak-fairness filter described in the module docs.
fn check_livelock(cfg: &Config, search: &Search, adj: &[Vec<(u8, u32)>], out: &mut Outcome) {
    let scc_id = tarjan(adj);
    let n = adj.len();
    // Per SCC: stepper pid mask, always-enabled pid mask, a member.
    // u16: crash pseudo-pids reach 2 * MAX_PROCS - 1 = 11 (a crash
    // edge can never sit on a cycle — `crashes_used` only grows — but
    // the mask must hold the label without overflowing the shift).
    let mut steppers: HashMap<u32, u16> = HashMap::new();
    let mut always: HashMap<u32, u16> = HashMap::new();
    let mut member: HashMap<u32, u32> = HashMap::new();
    for u in 0..n {
        let id = scc_id[u];
        for &(pid, v) in &adj[u] {
            if scc_id[v as usize] == id {
                *steppers.entry(id).or_insert(0) |= 1u16 << pid;
            }
        }
    }
    for (u, &id) in scc_id.iter().enumerate().take(n) {
        if !steppers.contains_key(&id) {
            continue; // trivial SCC, no internal edge
        }
        // Real pids only: crashes are adversarial, so fairness must
        // never assume one eventually fires to escape a cycle.
        let mut mask = 0u16;
        for pid in 0..cfg.n_procs() {
            if cfg.enabled(&search.arena[u], pid) {
                mask |= 1u16 << pid;
            }
        }
        always.entry(id).and_modify(|m| *m &= mask).or_insert(mask);
        member.entry(id).or_insert(u as u32);
    }
    out.sccs_checked = steppers.len();
    for (&id, &step_mask) in &steppers {
        let always_mask = always.get(&id).copied().unwrap_or(0);
        if always_mask & !step_mask == 0 {
            let spinners: Vec<u8> =
                (0..cfg.n_procs()).filter(|&p| step_mask & (1u16 << p) != 0).collect();
            out.violation = Some(Counterexample {
                violation: Violation::Livelock { spinners },
                trace: search.trace_to(member[&id], None),
            });
            return;
        }
    }
}

/// Iterative Tarjan: returns each vertex's SCC id (the SCC root's
/// index).
fn tarjan(adj: &[Vec<(u8, u32)>]) -> Vec<u32> {
    let n = adj.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_id = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    // Call frames: (vertex, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            let vi = v as usize;
            if *ci == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(&(_, w)) = adj[vi].get(*ci) {
                *ci += 1;
                let wi = w as usize;
                if index[wi] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if low[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc_id[w as usize] = v;
                        if w == v {
                            break;
                        }
                    }
                }
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }
    scc_id
}

/// Run the fixed "lowest enabled pid first" schedule to completion —
/// one legal serial interleaving, useful as a fidelity probe and for
/// producing a full clean trace to replay.
pub fn run_serial(cfg: &Config) -> Result<(Vec<u8>, State), Counterexample> {
    let mut s = cfg.initial();
    let mut trace = Vec::new();
    loop {
        let en = cfg.enabled_pids(&s);
        let Some(&pid) = en.first() else { break };
        match cfg.step(&s, pid, None) {
            Ok((ns, _)) => {
                s = ns;
                trace.push(pid);
                assert!(trace.len() < 100_000, "serial schedule diverged");
            }
            Err(v) => {
                trace.push(pid);
                return Err(Counterexample { violation: v, trace });
            }
        }
    }
    Ok((trace, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls::Kind;

    #[test]
    fn tiny_correct_config_is_clean() {
        let cfg = Config::new(1, 2, 4, Kind::STATIC, Kind::SS);
        let out =
            explore(&cfg, &Options { wait_bound: Some(cfg.wait_bound()), ..Options::default() });
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.terminals > 0);
        assert!(!out.capped);
        assert!(out.states > 1);
    }

    #[test]
    fn trace_replays_to_the_violation() {
        let cfg = Config::new(1, 2, 4, Kind::STATIC, Kind::SS).with_variant(Variant::LostUnlock);
        let out = explore(&cfg, &Options::default());
        let cex = out.violation.expect("lost unlock must deadlock");
        assert!(matches!(cex.violation, Violation::Deadlock { .. }));
        // Replaying the trace from the initial state must be legal and
        // end in a state with no enabled transitions.
        let mut s = cfg.initial();
        for &pid in &cex.trace {
            let (ns, _) = cfg.step(&s, pid, None).expect("trace step legal");
            s = ns;
        }
        assert!(cfg.enabled_pids(&s).is_empty());
    }

    #[test]
    fn por_agrees_with_full_exploration() {
        let cfg = Config::new(2, 2, 6, Kind::GSS, Kind::SS);
        let full = explore(&cfg, &Options::default());
        let reduced = explore(&cfg, &Options { por: true, ..Options::default() });
        assert!(full.violation.is_none());
        assert!(reduced.violation.is_none());
        assert!(reduced.fired_total <= full.fired_total);
        assert!(reduced.reduction_ratio() <= 1.0);
    }

    #[test]
    fn serial_run_terminates_cleanly() {
        let cfg = Config::new(2, 2, 12, Kind::FAC2, Kind::GSS);
        let (trace, s) = run_serial(&cfg).expect("clean");
        assert!(!trace.is_empty());
        assert_eq!(s.executed, cfg.full_mask());
    }
}
