//! Technique-switch adversary: small-scope checking of the AUTO mode's
//! **re-basing invariant** (see [`dls::switchable`]).
//!
//! The `dls-service` AUTO job mode switches the active DLS technique at
//! batch boundaries while two global counters (`step`, `scheduled`)
//! guarantee exactly-once chunk placement. A switch must re-base only
//! the *sizing view*; the counters are never rewound. This module
//! models that contract at the service level — a
//! [`dls::SwitchableScheduler`] for sizing, a
//! [`resilience::LeaseTable`] for the grant ledger, and the two global
//! counters for placement — and checks it three ways:
//!
//! * [`explore_switch_plans`] — DFS over *every* ladder switch choice
//!   at *every* batch boundary, proving exactly-once coverage and the
//!   placement identity `origin.scheduled + segment_consumed ==
//!   global.scheduled` at every leaf;
//! * [`crash_sweep`] — a deterministic switching campaign crashed
//!   after **every** event (grant, settlement, switch, recovery),
//!   recovering via [`dls::SwitchableScheduler::restore`] plus lease
//!   re-arming, with the same leaf checks — this includes the
//!   switch-then-immediately-crash placements;
//! * [`SwitchVariant::ForgottenOrigin`] — a seeded-broken re-basing
//!   (the global counters are *not* carried into `switch`/`restore`,
//!   so the rebuilt calculator places from iteration 0 again). The
//!   adversary must find its counterexample: a duplicated prefix and a
//!   lost tail of equal length, i.e. re-executed iterations.
//!
//! Placement in the model is *derived from the re-basing origin*
//! (`lo = origin.scheduled + consumed_in_segment`) rather than read
//! off the global counter, precisely so the broken variant's
//! misplacement is observable; the correct variant proves the derived
//! placement equal to the global counter at every grant, which is the
//! invariant the real server relies on when it places chunks straight
//! from `scheduled`.

use std::collections::VecDeque;

use dls::technique::WorkerCtx;
use dls::{Decision, Kind, LoopSpec, SchedKind, SchedState, SwitchReason, SwitchableScheduler};
use resilience::LeaseTable;

/// The tuner's ladder, as switch targets for the adversary (plus
/// "stay", expressed as `None` in a plan).
pub const LADDER: [SchedKind; 4] = [
    SchedKind::Fixed(Kind::SS),
    SchedKind::Fixed(Kind::GSS),
    SchedKind::Fixed(Kind::FAC2),
    SchedKind::Af,
];

/// Which re-basing implementation the model drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchVariant {
    /// Correct: `switch` and `restore` receive the live global
    /// counters as the re-basing origin.
    Correct,
    /// Seeded bug: the counters are **not carried over** — `switch`
    /// and `restore` receive [`SchedState::START`], so the rebuilt
    /// calculator believes the whole loop is still ahead and places
    /// from iteration 0 again.
    ForgottenOrigin,
}

/// Scope of one adversary run.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Loop iterations.
    pub n: u64,
    /// Workers in the loop specification (calculator slots).
    pub p: u32,
    /// Driving clients (also the number of chunks kept in flight).
    pub workers: u32,
    /// Settlements between decision points (the tuner batch).
    pub batch: u32,
    /// Which re-basing implementation to drive.
    pub variant: SwitchVariant,
}

impl SwitchConfig {
    /// Correct-variant scope.
    pub fn new(n: u64, p: u32, workers: u32, batch: u32) -> Self {
        Self { n, p, workers, batch, variant: SwitchVariant::Correct }
    }

    /// The same scope driving the seeded-broken re-basing.
    pub fn broken(self) -> Self {
        Self { variant: SwitchVariant::ForgottenOrigin, ..self }
    }
}

/// One deterministic campaign: which ladder rung to switch to at each
/// batch boundary (`None` = stay), and an optional crash placement.
#[derive(Clone, Debug, Default)]
pub struct SwitchPlan {
    /// Per-boundary switch target; boundaries beyond the list stay.
    pub choices: Vec<Option<SchedKind>>,
    /// Crash (and recover) immediately after this 0-based event index.
    pub crash_at: Option<u64>,
}

/// A counterexample found by the adversary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwitchViolation {
    /// A grant's origin-derived placement diverged from the global
    /// `scheduled` counter (correct variant only — this is the
    /// re-basing invariant, checked at every grant).
    Misplaced {
        /// The global counter (where the server would place).
        expected_lo: u64,
        /// Where the segment view placed.
        got_lo: u64,
        /// Decision history at the divergence.
        decisions: Vec<Decision>,
    },
    /// Terminal coverage was not exactly-once.
    Coverage {
        /// Iterations settled more than once (duplicate execution).
        duplicated: Vec<u64>,
        /// Iterations never settled (lost work).
        lost: Vec<u64>,
        /// Decision history of the run.
        decisions: Vec<Decision>,
    },
    /// The run stopped making progress before completion.
    Stuck {
        /// Events executed before the livelock.
        events: u64,
    },
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct SwitchOutcome {
    /// Complete runs checked.
    pub leaves: u64,
    /// Technique switches performed across all runs.
    pub switches: u64,
    /// Crashes injected across all runs.
    pub crashes: u64,
    /// First counterexample, if any.
    pub violation: Option<SwitchViolation>,
}

/// Statistics of one complete, violation-free campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Events executed (grants + settlements + switches + recoveries).
    pub events: u64,
    /// Decision history (dense `seq`, chained `from`/`to`).
    pub decisions: Vec<Decision>,
    /// Lease ledger totals `(granted, completed, reclaimed)`.
    pub leases: (u64, u64, u64),
}

/// The service-level model: sizing via [`SwitchableScheduler`], the
/// grant ledger via [`LeaseTable`], placement via the re-basing origin.
#[derive(Clone, Debug)]
struct JobModel {
    cfg: SwitchConfig,
    sched: SwitchableScheduler,
    /// Global counters — the service ledger. Never rewound.
    step: u64,
    scheduled: u64,
    completed: u64,
    /// Re-basing origin actually handed to the scheduler (equals the
    /// global counters in the correct variant; `START` in the broken
    /// one) plus the iterations consumed in the current segment.
    origin_scheduled: u64,
    seg_consumed: u64,
    leases: LeaseTable,
    /// Reclaimed ranges to re-serve before fresh grants.
    pool: Vec<(u64, u64)>,
    /// In-flight lease ids, settled oldest-first.
    outstanding: VecDeque<u64>,
    /// Per-iteration settlement multiplicity.
    counts: Vec<u32>,
    decisions: Vec<Decision>,
    settles_in_window: u32,
    events: u64,
    crash_at: Option<u64>,
    crashes: u64,
    next_worker: u32,
}

/// What [`JobModel::advance`] stopped on.
enum Step {
    /// `batch` settlements accrued and work remains: a decision point.
    Boundary,
    /// The loop completed.
    Done,
}

impl JobModel {
    fn new(cfg: SwitchConfig, crash_at: Option<u64>) -> Self {
        let spec = LoopSpec::new(cfg.n, cfg.p);
        Self {
            cfg,
            sched: SwitchableScheduler::new(spec, SchedKind::Auto),
            step: 0,
            scheduled: 0,
            completed: 0,
            origin_scheduled: 0,
            seg_consumed: 0,
            leases: LeaseTable::new(),
            pool: Vec::new(),
            outstanding: VecDeque::new(),
            counts: vec![0; usize::try_from(cfg.n).expect("small-scope n")],
            decisions: Vec::new(),
            settles_in_window: 0,
            events: 0,
            crash_at,
            crashes: 0,
            next_worker: 0,
        }
    }

    /// The origin the variant under test hands to `switch`/`restore`.
    fn carried_origin(&self) -> SchedState {
        match self.cfg.variant {
            SwitchVariant::Correct => SchedState { step: self.step, scheduled: self.scheduled },
            SwitchVariant::ForgottenOrigin => SchedState::START,
        }
    }

    /// Count one event and inject the planned crash behind it.
    fn event(&mut self) {
        self.events += 1;
        if self.crash_at == Some(self.events) {
            self.crash();
        }
    }

    /// Grant one chunk to the next worker: reclaimed ranges first,
    /// then a fresh grant sized by the active technique and placed at
    /// `origin.scheduled + consumed_in_segment`.
    fn fetch(&mut self) -> Result<(), SwitchViolation> {
        let worker = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.cfg.workers.max(1);
        let (lo, hi) = if let Some(range) = self.pool.pop() {
            range
        } else {
            let ctx = WorkerCtx::worker(worker);
            let size = self.sched.next_size(ctx).clamp(1, self.cfg.n - self.scheduled);
            let lo = self.origin_scheduled + self.seg_consumed;
            if self.cfg.variant == SwitchVariant::Correct && lo != self.scheduled {
                return Err(SwitchViolation::Misplaced {
                    expected_lo: self.scheduled,
                    got_lo: lo,
                    decisions: self.decisions.clone(),
                });
            }
            self.seg_consumed += size;
            self.step += 1;
            self.scheduled += size;
            (lo, lo + size)
        };
        let id = self.leases.grant(worker, lo, hi, self.events);
        self.outstanding.push_back(id);
        self.event();
        Ok(())
    }

    /// Settle the oldest in-flight lease.
    fn settle(&mut self) -> Result<(), SwitchViolation> {
        let id = self.outstanding.pop_front().expect("settle with nothing in flight");
        let lease = *self.leases.get(id).expect("granted lease");
        self.leases.complete(id).expect("single settlement");
        for i in lease.lo..lease.hi.min(self.cfg.n) {
            self.counts[usize::try_from(i).expect("small-scope n")] += 1;
        }
        self.completed += lease.hi - lease.lo;
        self.settles_in_window += 1;
        self.sched.record(lease.owner, lease.hi - lease.lo, 100, 10);
        self.event();
        Ok(())
    }

    /// Switch the active technique at a batch boundary, journaling the
    /// decision with the true global counters (the journal is correct
    /// in both variants — only the scheduler's origin is seeded bad).
    fn switch_to(&mut self, to: SchedKind, reason: SwitchReason) {
        let seq = u32::try_from(self.decisions.len()).expect("small-scope decision count");
        self.decisions.push(Decision {
            seq,
            step: self.step,
            scheduled: self.scheduled,
            from: self.sched.active(),
            to,
            reason,
        });
        let origin = self.carried_origin();
        self.sched.switch(to, origin);
        self.origin_scheduled = origin.scheduled;
        self.seg_consumed = 0;
        self.settles_in_window = 0;
        self.event();
    }

    /// Crash and recover: in-flight leases are re-armed into the
    /// reclaim pool, the scheduler is rebuilt with
    /// [`SwitchableScheduler::restore`] at the kind named by the last
    /// journaled decision, and driving resumes. The global counters
    /// and the decision history survive (they are journaled); whether
    /// they are *carried into* `restore` is the variant under test.
    fn crash(&mut self) {
        self.crashes += 1;
        self.outstanding.clear();
        let ids: Vec<u64> = self.leases.active(None).map(|l| l.id).collect();
        for id in ids {
            let range = self.leases.reclaim(id, 0).expect("re-arm active lease");
            self.pool.push(range);
        }
        // Deterministic re-serve order: lowest range first (popped last).
        self.pool.sort_unstable_by(|a, b| b.cmp(a));
        let active = self.decisions.last().map_or(SchedKind::Auto, |d| d.to);
        let origin = self.carried_origin();
        let switches = u32::try_from(self.decisions.len()).expect("small-scope decision count");
        self.sched = SwitchableScheduler::restore(*self.sched.spec(), active, origin, switches);
        assert_eq!(self.sched.switch_count(), switches, "switch count survives recovery");
        self.origin_scheduled = origin.scheduled;
        self.seg_consumed = 0;
        self.settles_in_window = 0;
    }

    /// Drive grants and settlements until the next batch boundary (if
    /// work remains) or completion. Keeps `cfg.workers` chunks in
    /// flight; settles oldest-first.
    fn advance(&mut self) -> Result<Step, SwitchViolation> {
        // Generous progress bound: every iteration is granted and
        // settled at most a few times even in the broken variant.
        let bound = 16 * self.cfg.n + 64;
        loop {
            if self.completed >= self.cfg.n {
                return Ok(Step::Done);
            }
            if self.events > bound {
                return Err(SwitchViolation::Stuck { events: self.events });
            }
            let can_grant = !self.pool.is_empty() || self.scheduled < self.cfg.n;
            if can_grant && (self.outstanding.len() as u64) < u64::from(self.cfg.workers) {
                self.fetch()?;
            } else if !self.outstanding.is_empty() {
                self.settle()?;
                if self.settles_in_window >= self.cfg.batch
                    && (self.scheduled < self.cfg.n || !self.pool.is_empty())
                {
                    self.settles_in_window = 0;
                    return Ok(Step::Boundary);
                }
            } else {
                return Err(SwitchViolation::Stuck { events: self.events });
            }
        }
    }

    /// Terminal exactly-once check.
    fn check_coverage(&self) -> Result<(), SwitchViolation> {
        let duplicated: Vec<u64> = (0..self.cfg.n)
            .filter(|&i| self.counts[usize::try_from(i).expect("small-scope n")] > 1)
            .collect();
        let lost: Vec<u64> = (0..self.cfg.n)
            .filter(|&i| self.counts[usize::try_from(i).expect("small-scope n")] == 0)
            .collect();
        if duplicated.is_empty() && lost.is_empty() {
            Ok(())
        } else {
            Err(SwitchViolation::Coverage { duplicated, lost, decisions: self.decisions.clone() })
        }
    }

    /// Leaf invariants beyond coverage: ledger fully settled, decision
    /// history dense and chained.
    fn check_leaf(&self) -> Result<(), SwitchViolation> {
        self.check_coverage()?;
        assert_eq!(self.leases.active(None).count(), 0, "no dangling lease at completion");
        let (granted, completed, reclaimed) = self.leases.counts();
        assert_eq!(granted, completed + reclaimed, "every lease settled exactly once");
        let mut prev_to: Option<SchedKind> = None;
        let mut prev_scheduled = 0u64;
        for (i, d) in self.decisions.iter().enumerate() {
            assert_eq!(d.seq as usize, i, "dense decision seq");
            if let Some(p) = prev_to {
                assert_eq!(d.from, p, "chained decision history");
            }
            assert!(d.scheduled >= prev_scheduled, "monotone decision watermarks");
            prev_to = Some(d.to);
            prev_scheduled = d.scheduled;
        }
        Ok(())
    }
}

/// Run one deterministic campaign to completion.
pub fn run_plan(cfg: &SwitchConfig, plan: &SwitchPlan) -> Result<CampaignReport, SwitchViolation> {
    let mut m = JobModel::new(*cfg, plan.crash_at);
    let mut boundary = 0usize;
    loop {
        match m.advance()? {
            Step::Done => {
                m.check_leaf()?;
                return Ok(CampaignReport {
                    events: m.events,
                    decisions: m.decisions,
                    leases: m.leases.counts(),
                });
            }
            Step::Boundary => {
                if let Some(Some(to)) = plan.choices.get(boundary) {
                    m.switch_to(*to, SwitchReason::Manual);
                }
                boundary += 1;
            }
        }
    }
}

/// DFS over every ladder switch choice (including "stay") at every
/// batch boundary; every leaf must be exactly-once with a fully
/// settled ledger.
pub fn explore_switch_plans(cfg: &SwitchConfig) -> SwitchOutcome {
    let mut out = SwitchOutcome::default();
    let m = JobModel::new(*cfg, None);
    dfs(m, &mut out);
    out
}

fn dfs(mut m: JobModel, out: &mut SwitchOutcome) {
    if out.violation.is_some() {
        return;
    }
    match m.advance() {
        Err(v) => out.violation = Some(v),
        Ok(Step::Done) => {
            if let Err(v) = m.check_leaf() {
                out.violation = Some(v);
            }
            out.leaves += 1;
        }
        Ok(Step::Boundary) => {
            // "Stay" first, then every ladder rung (skipping a rung
            // equal to the active kind would prune real re-switches —
            // re-basing onto the same technique is a distinct path).
            dfs(m.clone(), out);
            for to in LADDER {
                let mut c = m.clone();
                c.switch_to(to, SwitchReason::Manual);
                out.switches += 1;
                dfs(c, out);
            }
        }
    }
}

/// A deterministic always-switching campaign (cycling the ladder at
/// every boundary) crashed after every event index in turn, each run
/// recovering and driving to completion with full leaf checks.
pub fn crash_sweep(cfg: &SwitchConfig) -> SwitchOutcome {
    let mut out = SwitchOutcome::default();
    let cycling: Vec<Option<SchedKind>> =
        (0..64).map(|i| Some(LADDER[(i + 1) % LADDER.len()])).collect();
    let baseline = match run_plan(cfg, &SwitchPlan { choices: cycling.clone(), crash_at: None }) {
        Ok(r) => r,
        Err(v) => {
            out.violation = Some(v);
            return out;
        }
    };
    out.leaves += 1;
    out.switches += baseline.decisions.len() as u64;
    for k in 1..=baseline.events {
        let plan = SwitchPlan { choices: cycling.clone(), crash_at: Some(k) };
        match run_plan(cfg, &plan) {
            Ok(r) => {
                out.leaves += 1;
                out.crashes += 1;
                out.switches += r.decisions.len() as u64;
            }
            Err(v) => {
                out.violation = Some(v);
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_variant_survives_every_switch_plan() {
        let out = explore_switch_plans(&SwitchConfig::new(16, 4, 2, 3));
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.leaves > 100, "exploration must branch (got {} leaves)", out.leaves);
        assert!(out.switches > 100, "switch paths explored (got {})", out.switches);
    }

    #[test]
    fn correct_variant_survives_every_crash_placement() {
        let out = crash_sweep(&SwitchConfig::new(24, 4, 2, 4));
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.crashes > 20, "sweep must cover many placements");
    }

    #[test]
    fn broken_rebase_duplicates_prefix_and_loses_tail() {
        let cfg = SwitchConfig::new(24, 4, 2, 4).broken();
        let plan = SwitchPlan { choices: vec![Some(SchedKind::Fixed(Kind::GSS))], crash_at: None };
        // The identical plan is clean under the correct re-basing.
        run_plan(&SwitchConfig::new(24, 4, 2, 4), &plan).expect("correct variant covers");
        let v = run_plan(&cfg, &plan).expect_err("forgotten origin must be caught");
        match v {
            SwitchViolation::Coverage { duplicated, lost, decisions } => {
                assert_eq!(decisions.len(), 1);
                assert!(!duplicated.is_empty() && !lost.is_empty());
                assert_eq!(duplicated.len(), lost.len(), "re-served prefix displaces the tail");
                assert_eq!(duplicated[0], 0, "duplication restarts at iteration 0");
                assert_eq!(*lost.last().expect("non-empty"), cfg.n - 1, "tail is lost");
            }
            other => panic!("expected a coverage counterexample, got {other:?}"),
        }
    }

    #[test]
    fn broken_restore_after_crash_is_caught_too() {
        let cfg = SwitchConfig::new(24, 4, 2, 4).broken();
        let plan = SwitchPlan { choices: vec![], crash_at: Some(9) };
        run_plan(&SwitchConfig::new(24, 4, 2, 4), &plan).expect("correct restore covers");
        let v = run_plan(&cfg, &plan).expect_err("forgotten restore origin must be caught");
        assert!(
            matches!(v, SwitchViolation::Coverage { ref duplicated, .. } if !duplicated.is_empty()),
            "expected duplicate execution, got {v:?}"
        );
    }
}
