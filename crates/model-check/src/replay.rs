//! Counterexample replay: turn an abstract model trace into the RMA
//! access log the real executor would have produced, and run it
//! through the `rma-check` epoch / race pipeline.
//!
//! The mapping reuses [`hier::sim::layout`] — the same window ids and
//! displacements `hier::sim`'s `RmaTape` stamps — so a replayed
//! counterexample reads exactly like a recorded run of the virtual-
//! time executor, and the `rma-check` report names the protocol slots
//! (`LO`, `HI`, `REFILLING`, …) a developer already knows from the
//! simulator. Each seeded bug lands on its own checker diagnosis:
//!
//! * [`Variant::RefillWithoutLock`] — the unlocked flag reads/writes
//!   surface as [`rma_check::ViolationKind::AccessOutsideEpoch`];
//! * [`Variant::NonAtomicFaa`] — the get/put pair on the global
//!   counter races across fetchers:
//!   [`rma_check::ViolationKind::DataRace`];
//! * [`Variant::LostUnlock`] — the never-released window lock is an
//!   [`rma_check::ViolationKind::EpochLeak`] at end of log.
//!
//! [`Variant::RefillWithoutLock`]: crate::model::Variant::RefillWithoutLock
//! [`Variant::NonAtomicFaa`]: crate::model::Variant::NonAtomicFaa
//! [`Variant::LostUnlock`]: crate::model::Variant::LostUnlock

use crate::model::{Action, Config, EventSink, State, Violation};
use hier::sim::layout::{node_win, GLOBAL_WIN};
use mpisim::{RmaEvent, RmaLog};

/// One rendered trace step.
#[derive(Clone, Debug)]
pub struct ReplayStep {
    /// Process that moved.
    pub pid: u8,
    /// What it did.
    pub action: Action,
}

/// A fully replayed trace: the synthesized access log, the rendered
/// steps, and the violation the final step raised (if the trace ends
/// in one).
#[derive(Debug)]
pub struct Replay {
    /// The access log, in the executor's tape vocabulary.
    pub log: RmaLog,
    /// The interpreted steps.
    pub steps: Vec<ReplayStep>,
    /// The state after the last successful step.
    pub final_state: State,
    /// The safety violation raised by the last step, if any.
    pub violation: Option<Violation>,
}

impl Replay {
    /// Run the `rma-check` epoch + race pipeline over the log.
    pub fn check(&self) -> rma_check::Report {
        rma_check::check_log(&self.log)
    }

    /// Human-readable rendering of the counterexample.
    pub fn render(&self, cfg: &Config) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            // Crash steps carry a pseudo process id; attribute them
            // to the victim so the rendered trace reads naturally.
            let pid = match step.action {
                Action::Crash { victim, .. } => victim,
                _ => step.pid,
            };
            let node = cfg.node_of(pid);
            out.push_str(&format!("{i:3}. p{pid}@n{node}: {}\n", describe(step.action)));
        }
        if let Some(v) = &self.violation {
            out.push_str(&format!("     => violation: {v:?}\n"));
        }
        out
    }
}

fn describe(a: Action) -> String {
    match a {
        Action::Acquire => "acquire local window lock".into(),
        Action::Enqueue { depth } => format!("enqueue on local lock ({depth} grants ahead)"),
        Action::TakeSub { lo, hi } => format!("take sub-chunk [{lo}, {hi}) from local queue"),
        Action::BecomeRefiller => "probe empty queue; become refiller".into(),
        Action::PeerRefilling => "probe empty queue; peer refill in flight".into(),
        Action::ProbeDone => "probe empty queue; global done -> terminate".into(),
        Action::FetchChunk { lo, hi } => format!("atomic global fetch -> chunk [{lo}, {hi})"),
        Action::FetchExhausted => "atomic global fetch -> exhausted".into(),
        Action::FaaRead => "BROKEN non-atomic FAA: read global pair".into(),
        Action::FaaWriteChunk { lo, hi } => {
            format!("BROKEN non-atomic FAA: blind write, claims [{lo}, {hi})")
        }
        Action::FaaWriteExhausted => "BROKEN non-atomic FAA: stale pair exhausted".into(),
        Action::DepositChunk { lo, hi, sub_lo, sub_hi } => {
            format!("deposit [{lo}, {hi}); take sub-chunk [{sub_lo}, {sub_hi})")
        }
        Action::DepositExhausted { done: true } => {
            "deposit global-done; queue empty -> terminate".into()
        }
        Action::DepositExhausted { done: false } => "deposit global-done; queue non-empty".into(),
        Action::ObserveEmpty => "BROKEN unlocked probe: queue empty, no refill".into(),
        Action::ObservePeer => "BROKEN unlocked probe: peer refill in flight".into(),
        Action::ObserveDone => "BROKEN unlocked probe: global done -> terminate".into(),
        Action::CommitRefill => "BROKEN unlocked refill commit".into(),
        Action::Crash { holding_lock: true, .. } => "CRASH while holding the window lock".into(),
        Action::Crash { holding_lock: false, .. } => "CRASH".into(),
        Action::RepairLock { dead } => format!("repair window lock abandoned by dead p{dead}"),
        Action::RefillFailover { dead } => {
            format!("clear refill flag abandoned by dead p{dead}")
        }
        Action::Reclaim { owner, lo, hi } => {
            format!("reclaim dead p{owner}'s lease [{lo}, {hi})")
        }
    }
}

/// Re-execute `trace` from the initial state, synthesizing the RMA
/// events each transition stands for. A trailing step may raise a
/// safety violation (that is what counterexample traces end in); its
/// events up to the violating access are kept.
pub fn replay(cfg: &Config, trace: &[u8]) -> Replay {
    let mut sink: EventSink = Vec::new();
    let total = u32::from(cfg.n_procs());
    let rpn = u32::from(cfg.ranks_per_node);
    // The executor's t=0 block: every worker attaches both windows
    // and opens its run-long lock_all epoch on the global window.
    for w in 0..total {
        let ni = (w / rpn) as usize;
        sink.push((GLOBAL_WIN, w, RmaEvent::Attach { shared: false, comm_size: total }));
        sink.push((node_win(ni), w % rpn, RmaEvent::Attach { shared: true, comm_size: rpn }));
        sink.push((GLOBAL_WIN, w, RmaEvent::LockAll));
    }

    let mut s = cfg.initial();
    let mut steps = Vec::new();
    let mut violation = None;
    for &pid in trace {
        match cfg.step(&s, pid, Some(&mut sink)) {
            Ok((ns, action)) => {
                steps.push(ReplayStep { pid, action });
                s = ns;
            }
            Err(v) => {
                violation = Some(v);
                break;
            }
        }
    }

    // Close the run-long global epochs (the executor does this as each
    // worker finishes); a leaked *node* lock stays leaked.
    for w in 0..total {
        sink.push((GLOBAL_WIN, w, RmaEvent::UnlockAll));
    }

    let log = RmaLog::new();
    for (win, rank, ev) in sink {
        log.push(win, rank, ev);
    }
    Replay { log, steps, final_state: s, violation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::run_serial;
    use crate::model::Variant;
    use dls::Kind;

    #[test]
    fn clean_serial_trace_replays_clean() {
        // A full correct run, replayed, must pass the same checker the
        // executor's own tapes pass — proving the synthesized event
        // blocks match the protocol the checker expects.
        for (inter, intra) in [(Kind::GSS, Kind::SS), (Kind::TSS, Kind::FAC2)] {
            let cfg = Config::new(2, 2, 12, inter, intra);
            let (trace, _) = run_serial(&cfg).expect("correct model");
            let replay = replay(&cfg, &trace);
            assert!(replay.violation.is_none());
            let report = replay.check();
            assert!(report.is_clean(), "{inter}/{intra}:\n{}", report.render());
        }
    }

    #[test]
    fn render_names_processes_and_actions() {
        let cfg = Config::new(1, 2, 4, Kind::STATIC, Kind::SS);
        let (trace, _) = run_serial(&cfg).expect("correct model");
        let r = replay(&cfg, &trace);
        let text = r.render(&cfg);
        assert!(text.contains("p0@n0"), "{text}");
        assert!(text.contains("become refiller"), "{text}");
        assert!(text.contains("take sub-chunk"), "{text}");
    }

    #[test]
    fn replay_stops_at_the_violation() {
        let cfg = Config::new(1, 2, 6, Kind::SS, Kind::SS).with_variant(Variant::RefillWithoutLock);
        let out = crate::explore::explore(&cfg, &crate::explore::Options::default());
        let cex = out.violation.expect("broken variant");
        let r = replay(&cfg, &cex.trace);
        assert_eq!(r.violation.as_ref(), Some(&cex.violation));
        assert_eq!(r.steps.len(), cex.trace.len() - 1);
    }
}
