//! The abstract transition system of the two-level queue protocol.
//!
//! Every MPI process is modelled as a small program counter ([`Pc`])
//! over a compact, hashable [`State`]: the global queue's scheduling
//! pair, one [`NodeSt`] per node (an FCFS lock, the `refilling` /
//! `global_done` flags and a FIFO of deposited ranges mirroring
//! [`hier::queue::LocalQueue`]), and two coverage bitmaps (`executed`,
//! `deposited`) that turn exactly-once into a local check.
//!
//! Chunk sizes are *not* re-modelled: transitions call the real
//! [`dls`] chunk calculators (`Technique::chunk_size`, `SchedState::
//! take`), so the model checks the protocol around the very arithmetic
//! the executors run.
//!
//! ## Atomicity granularity
//!
//! Lock-protected critical sections execute as one atomic transition
//! (mutual exclusion makes every interleaving inside the section
//! equivalent to it running alone), but lock *acquisition* is a
//! separate transition — while a process is between acquire and its
//! critical section, peers can arrive and enqueue, which is exactly
//! the contention the FCFS bounded-bypass bound is about. The global
//! `MPI_Fetch_and_op` is a single atomic transition in the correct
//! model and split into a stale read + blind write under
//! [`Variant::NonAtomicFaa`].
//!
//! Each process has at most one enabled transition per state, so a
//! transition is identified by the process id that takes it.
//!
//! ## Bounded crashes
//!
//! [`Config::with_crashes`] gives an adversary a budget of crash
//! transitions, exposed as *pseudo process ids* `n_procs + q` (so the
//! explorer and trace machinery need no special cases): stepping one
//! kills process `q` at its current protocol point. What a crash may
//! wedge — and which [`Recovery`] level un-wedges it — is the
//! subsystem the `resilience` crate implements; the model pins its
//! necessity (the lease-free protocol provably loses iterations) and
//! its sufficiency at small scope.

use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, Kind, LoopSpec, SchedState, Technique};
use hier::sim::layout::{
    node_win, GLOBAL_DONE, GLOBAL_WIN, GSCHED, GSTEP, HI, LO, REFILLING, STEP, TAKEN,
};
use mpisim::{AtomicOpKind, LockKind, RmaEvent};

/// Most nodes a config may use (the paper-scale sweep needs 2).
pub const MAX_NODES: usize = 2;
/// Most ranks per node a config may use.
pub const MAX_RANKS_PER_NODE: usize = 3;
/// Most processes overall.
pub const MAX_PROCS: usize = MAX_NODES * MAX_RANKS_PER_NODE;
/// Most deposited-but-unfinished ranges a node queue can hold. In the
/// correct protocol it is 1 (refills start only on an empty queue);
/// broken variants can stack one in-flight deposit per rank.
pub const MAX_RANGES: usize = 4;
/// Most loop iterations (the coverage bitmaps are `u32`).
pub const MAX_N: u8 = 24;

/// `NodeSt::holder` value meaning "lock not held".
pub const FREE: u8 = 0xFF;
/// `Pc::Deposit` payload meaning "global queue observed exhausted".
pub const NONE_PAYLOAD: u8 = 0xFF;

/// How much of the crash-recovery protocol the model includes — the
/// knob separating the unpatched protocol's failure modes from the
/// patched protocol's exactly-once guarantee.
///
/// Crashes themselves are enabled by [`Config::with_crashes`]: each
/// crashable process gets a *pseudo process id* `n_procs + q` whose
/// single transition kills process `q` at its current protocol point
/// (crashes are adversarial — the explorer's fairness filter never
/// assumes one must happen). Whole-node death is outside the model's
/// recovery scope: the node queue lives in the node's shared segment,
/// which dies with its last rank (the simulator's node-drain
/// migration covers that case).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// No recovery: a crash wedges whatever the victim held. A dead
    /// lock holder deadlocks its node; a dead refiller livelocks it.
    None,
    /// Lock repair and refill failover, but fetched chunks are not
    /// leased: a refiller dying between its global `MPI_Fetch_and_op`
    /// and its deposit silently loses the chunk — the pinned
    /// [`Violation::LostIterations`] counterexample.
    LeaseFree,
    /// The full patch: the fetched chunk is published as a lease
    /// atomically with the FAA that claimed it, and probing peers
    /// reclaim a dead owner's lease back into the local queue.
    Leases,
}

/// Which protocol to explore: the faithful one or a seeded bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The protocol as implemented by `hier::sim::simulate_mpi_mpi`.
    Correct,
    /// The refill decision (queue empty? refill in flight?) is made
    /// *without* holding the local lock, so two ranks can both elect
    /// themselves refiller — the bug the `refilling` flag plus lock
    /// exists to prevent.
    RefillWithoutLock,
    /// The global `MPI_Fetch_and_op` is "optimised" into a plain get
    /// followed by a put: two concurrent fetchers read the same
    /// scheduling pair and both claim the same chunk (lost update).
    NonAtomicFaa,
    /// A rank that takes a sub-chunk forgets `MPI_Win_unlock`: the
    /// local lock is never released again.
    LostUnlock,
}

/// One deposited chunk with its intra-node scheduling progress — the
/// model's [`hier::queue::QueuedRange`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Range {
    /// First iteration of the deposit.
    pub lo: u8,
    /// One past the last iteration.
    pub hi: u8,
    /// Intra-node scheduling step within the deposit.
    pub step: u8,
    /// Iterations already handed out as sub-chunks.
    pub taken: u8,
}

impl Range {
    fn len(&self) -> u8 {
        self.hi - self.lo
    }

    fn remaining(&self) -> u8 {
        self.len() - self.taken
    }

    fn is_empty(&self) -> bool {
        self.taken >= self.len()
    }
}

/// Per-node shared state: the FCFS window lock and the local queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeSt {
    /// Process currently holding the window lock, or [`FREE`].
    pub holder: u8,
    /// FIFO of processes waiting for the lock (slots past `n_waiters`
    /// are kept zeroed so equal states hash equally).
    pub waiters: [u8; MAX_PROCS],
    /// Number of live entries in `waiters`.
    pub n_waiters: u8,
    /// A rank of this node is fetching from the global queue.
    pub refilling: bool,
    /// The global queue was observed exhausted.
    pub global_done: bool,
    /// FIFO of deposited ranges (exhausted fronts are popped eagerly,
    /// so outside critical sections the front is never empty).
    pub ranges: [Range; MAX_RANGES],
    /// Number of live entries in `ranges`.
    pub n_ranges: u8,
}

impl NodeSt {
    fn fresh() -> Self {
        NodeSt {
            holder: FREE,
            waiters: [0; MAX_PROCS],
            n_waiters: 0,
            refilling: false,
            global_done: false,
            ranges: [Range::default(); MAX_RANGES],
            n_ranges: 0,
        }
    }

    /// Pop exhausted ranges off the front (only the front can be
    /// exhausted: ranges are consumed FIFO).
    fn canon(&mut self) {
        while self.n_ranges > 0 && self.ranges[0].is_empty() {
            for i in 1..self.n_ranges as usize {
                self.ranges[i - 1] = self.ranges[i];
            }
            self.n_ranges -= 1;
            self.ranges[self.n_ranges as usize] = Range::default();
        }
    }

    fn push_range(&mut self, lo: u8, hi: u8) {
        assert!((self.n_ranges as usize) < MAX_RANGES, "range FIFO overflow (model bound)");
        self.ranges[self.n_ranges as usize] = Range { lo, hi, step: 0, taken: 0 };
        self.n_ranges += 1;
    }

    fn push_waiter(&mut self, pid: u8) -> u8 {
        let depth = 1 + self.n_waiters;
        self.waiters[self.n_waiters as usize] = pid;
        self.n_waiters += 1;
        depth
    }
}

/// A process's program counter. Payloads are iteration indices
/// (`u8`, since `n_iters <= MAX_N`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Pc {
    /// Free: wants the local lock to probe the queue.
    #[default]
    Probe,
    /// Enqueued on the local lock for a probe.
    WaitProbe,
    /// Holds the local lock; probe critical section pending.
    CritProbe,
    /// Elected refiller: about to hit the global queue.
    Fetch,
    /// [`Variant::NonAtomicFaa`] only: holds a stale copy of the
    /// global scheduling pair, about to blind-write the advance.
    FaaWrite {
        /// Stale `step` read by the first half of the broken FAA.
        step: u8,
        /// Stale `scheduled` read by the first half.
        sched: u8,
    },
    /// Has a fetched chunk `[lo, hi)` (or [`NONE_PAYLOAD`] for
    /// "global exhausted"); wants the local lock to deposit.
    Deposit {
        /// Chunk start, or [`NONE_PAYLOAD`].
        lo: u8,
        /// Chunk end, or [`NONE_PAYLOAD`].
        hi: u8,
    },
    /// Enqueued on the local lock for a deposit.
    WaitDeposit {
        /// Chunk start, or [`NONE_PAYLOAD`].
        lo: u8,
        /// Chunk end, or [`NONE_PAYLOAD`].
        hi: u8,
    },
    /// Holds the local lock; deposit critical section pending.
    CritDeposit {
        /// Chunk start, or [`NONE_PAYLOAD`].
        lo: u8,
        /// Chunk end, or [`NONE_PAYLOAD`].
        hi: u8,
    },
    /// [`Variant::RefillWithoutLock`] only: observed the queue empty
    /// with no refill in flight — without the lock — and will commit
    /// to refilling next.
    ObservedEmpty,
    /// Crashed. Under [`Recovery::Leases`] a refiller that died
    /// between its global FAA and its deposit leaves the claimed
    /// chunk `[lo, hi)` behind as a readable lease; otherwise the
    /// payload is [`NONE_PAYLOAD`] (nothing recoverable — under
    /// [`Recovery::LeaseFree`] the chunk evaporates with the victim,
    /// which is exactly the FAA-publish recoverability boundary).
    Crashed {
        /// Leased chunk start, or [`NONE_PAYLOAD`].
        lo: u8,
        /// Leased chunk end, or [`NONE_PAYLOAD`].
        hi: u8,
    },
    /// Terminated.
    Done,
}

/// A global protocol state. `Copy`, ~100 bytes, hashable — the
/// explorer stores millions of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct State {
    /// The global queue's `(step, scheduled)` pair.
    pub g_step: u8,
    /// Total iterations scheduled at the inter level.
    pub g_sched: u8,
    /// Bitmap of iterations handed out as sub-chunks (exactly-once).
    pub executed: u32,
    /// Bitmap of iterations deposited into some local queue.
    pub deposited: u32,
    /// Program counters, one per process (unused slots stay `Done`).
    pub procs: [Pc; MAX_PROCS],
    /// Per-node shared state (unused slots stay fresh).
    pub nodes: [NodeSt; MAX_NODES],
    /// Crashes injected so far (bounded by [`Config::crash_budget`]).
    pub crashes_used: u8,
}

/// A safety or liveness violation. Safety violations are returned by
/// [`Config::step`]; deadlock / livelock / coverage are found by the
/// explorer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An iteration was handed out as a sub-chunk twice.
    DoubleExecution {
        /// The doubly-executed iteration index.
        iter: u8,
        /// Process taking it the second time.
        pid: u8,
    },
    /// A chunk was deposited whose iterations were already deposited —
    /// the observable symptom of a lost global-counter update.
    DepositOverlap {
        /// Start of the overlapping deposit.
        lo: u8,
        /// End of the overlapping deposit.
        hi: u8,
        /// Depositing process.
        pid: u8,
    },
    /// A process committed to refilling while a peer's refill was
    /// already in flight.
    ConcurrentRefill {
        /// Node it happened on.
        node: u8,
        /// The second refiller.
        pid: u8,
    },
    /// A process committed to refilling while the queue held work —
    /// the "refill only when observed empty" rule.
    RefillWhileNonEmpty {
        /// Node it happened on.
        node: u8,
        /// The offending process.
        pid: u8,
    },
    /// All processes terminated but some iterations were never
    /// executed (the bitmap shows which).
    LostIterations {
        /// Bitmap of iterations never handed out.
        missing: u32,
    },
    /// No process can move but work (or a non-terminated process)
    /// remains.
    Deadlock {
        /// Processes not yet `Done`.
        stuck: Vec<u8>,
    },
    /// A weakly-fair cycle with no scheduling progress: the processes
    /// on the cycle can spin forever while every process that stays
    /// enabled is one of them.
    Livelock {
        /// Processes stepping inside the cycle.
        spinners: Vec<u8>,
    },
    /// A process waited behind more lock grants than the FCFS
    /// bounded-bypass bound allows.
    WaitBoundExceeded {
        /// The enqueued process.
        pid: u8,
        /// Observed grants-ahead depth.
        depth: u8,
        /// The configured bound.
        bound: u8,
    },
}

/// What a transition did — returned by [`Config::step`] so traces can
/// be rendered and wait depths tracked without re-deriving state
/// diffs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Acquired the free local lock (probe or deposit).
    Acquire,
    /// Enqueued on the held local lock; `depth` grants are ahead.
    Enqueue {
        /// Holder plus earlier waiters at enqueue time.
        depth: u8,
    },
    /// Took sub-chunk `[lo, hi)` from the local queue.
    TakeSub {
        /// Sub-chunk start.
        lo: u8,
        /// Sub-chunk end.
        hi: u8,
    },
    /// Probed an empty queue and became the refiller.
    BecomeRefiller,
    /// Probed an empty queue while a peer's refill is in flight.
    PeerRefilling,
    /// Probed an empty queue with the global queue exhausted:
    /// terminated.
    ProbeDone,
    /// Atomically fetched chunk `[lo, hi)` from the global queue.
    FetchChunk {
        /// Chunk start.
        lo: u8,
        /// Chunk end.
        hi: u8,
    },
    /// Atomically observed the global queue exhausted.
    FetchExhausted,
    /// [`Variant::NonAtomicFaa`]: read the global pair (first half).
    FaaRead,
    /// [`Variant::NonAtomicFaa`]: blind-wrote the advance computed
    /// from the stale pair, claiming `[lo, hi)`.
    FaaWriteChunk {
        /// Claimed chunk start.
        lo: u8,
        /// Claimed chunk end.
        hi: u8,
    },
    /// [`Variant::NonAtomicFaa`]: stale pair was already exhausted.
    FaaWriteExhausted,
    /// Deposited `[lo, hi)` and immediately took `[sub_lo, sub_hi)`.
    DepositChunk {
        /// Deposit start.
        lo: u8,
        /// Deposit end.
        hi: u8,
        /// Immediately-taken sub-chunk start.
        sub_lo: u8,
        /// Immediately-taken sub-chunk end.
        sub_hi: u8,
    },
    /// Deposited "global exhausted"; `done` if the queue was empty so
    /// the refiller terminated too.
    DepositExhausted {
        /// Whether the refiller terminated.
        done: bool,
    },
    /// [`Variant::RefillWithoutLock`]: unlocked read saw an empty
    /// queue and no refill in flight.
    ObserveEmpty,
    /// [`Variant::RefillWithoutLock`]: unlocked read saw a peer's
    /// refill in flight (self-loop).
    ObservePeer,
    /// [`Variant::RefillWithoutLock`]: unlocked read saw
    /// `global_done`: terminated.
    ObserveDone,
    /// [`Variant::RefillWithoutLock`]: committed the refill decision
    /// made without the lock.
    CommitRefill,
    /// A crash pseudo-transition killed `victim` at its current
    /// protocol point.
    Crash {
        /// The process that died.
        victim: u8,
        /// Whether it died holding its node's window lock.
        holding_lock: bool,
    },
    /// Seized the window lock abandoned by a dead holder (the model's
    /// bounded-grant timeout plus `repair_lock`).
    RepairLock {
        /// The dead holder the lock was revoked from.
        dead: u8,
    },
    /// Cleared the `refilling` flag abandoned by a dead refiller so a
    /// live rank can re-elect itself.
    RefillFailover {
        /// The dead refiller.
        dead: u8,
    },
    /// Re-deposited a dead owner's leased chunk into the local queue
    /// ([`Recovery::Leases`] only).
    Reclaim {
        /// The dead lease owner.
        owner: u8,
        /// Reclaimed chunk start.
        lo: u8,
        /// Reclaimed chunk end.
        hi: u8,
    },
}

/// Events synthesized by a transition, in the executor's tape
/// vocabulary: `(window, rank-in-window's-communicator, event)`.
pub type EventSink = Vec<(u64, u32, RmaEvent)>;

/// A bounded protocol configuration to explore.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of nodes (1..=[`MAX_NODES`]).
    pub nodes: u8,
    /// MPI ranks per node (1..=[`MAX_RANKS_PER_NODE`]).
    pub ranks_per_node: u8,
    /// Loop iterations (1..=[`MAX_N`]).
    pub n_iters: u8,
    /// Inter-node (global queue) technique.
    pub inter: Kind,
    /// Intra-node (local queue) technique.
    pub intra: Kind,
    /// Protocol variant.
    pub variant: Variant,
    /// Most crashes the adversary may inject (0 = fault-free).
    pub crash_budget: u8,
    /// How much of the recovery protocol is modelled.
    pub recovery: Recovery,
    inter_t: Technique,
    intra_t: Technique,
}

const EXCL: LockKind = LockKind::Exclusive;
const LOCK: RmaEvent = RmaEvent::Lock { kind: EXCL, target: 0 };
const UNLOCK: RmaEvent = RmaEvent::Unlock { kind: EXCL, target: 0 };

fn get(disp: usize) -> RmaEvent {
    RmaEvent::Get { target: 0, disp, len: 1 }
}

fn put(disp: usize) -> RmaEvent {
    RmaEvent::Put { target: 0, disp, len: 1 }
}

fn u8c(x: u64) -> u8 {
    u8::try_from(x).expect("model value exceeds u8 (config bounds enforce n <= 24)")
}

impl Config {
    /// A correct-variant configuration; panics if the bounds are
    /// exceeded.
    pub fn new(nodes: u8, ranks_per_node: u8, n_iters: u8, inter: Kind, intra: Kind) -> Self {
        assert!((1..=MAX_NODES as u8).contains(&nodes), "nodes out of model bounds");
        assert!(
            (1..=MAX_RANKS_PER_NODE as u8).contains(&ranks_per_node),
            "ranks_per_node out of model bounds"
        );
        assert!((1..=MAX_N).contains(&n_iters), "n_iters out of model bounds");
        Config {
            nodes,
            ranks_per_node,
            n_iters,
            inter,
            intra,
            variant: Variant::Correct,
            crash_budget: 0,
            recovery: Recovery::None,
            inter_t: Technique::from_kind(inter),
            intra_t: Technique::from_kind(intra),
        }
    }

    /// Same configuration with a different [`Variant`].
    pub fn with_variant(mut self, variant: Variant) -> Self {
        assert!(
            self.crash_budget == 0 || variant == Variant::Correct,
            "crash modelling only composes with the correct variant"
        );
        self.variant = variant;
        self
    }

    /// Allow the adversary up to `budget` crashes (correct variant
    /// only — the seeded bugs' counterexamples don't need an
    /// adversary on top).
    pub fn with_crashes(mut self, budget: u8) -> Self {
        assert!(self.variant == Variant::Correct, "crash modelling requires the correct variant");
        assert!(budget >= 1, "a zero crash budget is the default");
        self.crash_budget = budget;
        self
    }

    /// Select how much of the recovery protocol to model.
    pub fn with_recovery(mut self, recovery: Recovery) -> Self {
        self.recovery = recovery;
        self
    }

    /// Total process count.
    pub fn n_procs(&self) -> u8 {
        self.nodes * self.ranks_per_node
    }

    /// Node index of a process.
    pub fn node_of(&self, pid: u8) -> u8 {
        pid / self.ranks_per_node
    }

    /// Rank of a process within its node's communicator.
    pub fn local_of(&self, pid: u8) -> u8 {
        pid % self.ranks_per_node
    }

    /// Bitmap with every iteration set.
    pub fn full_mask(&self) -> u32 {
        if self.n_iters == 32 {
            u32::MAX
        } else {
            (1u32 << self.n_iters) - 1
        }
    }

    /// The FCFS bounded-bypass bound: at most `ranks_per_node - 1`
    /// grants can be ahead of an enqueuing rank (the holder plus
    /// every other rank of the node already waiting).
    pub fn wait_bound(&self) -> u8 {
        self.ranks_per_node - 1
    }

    /// The initial state: every process free, every queue empty.
    pub fn initial(&self) -> State {
        let mut procs = [Pc::Done; MAX_PROCS];
        for p in procs.iter_mut().take(self.n_procs() as usize) {
            *p = Pc::Probe;
        }
        State {
            g_step: 0,
            g_sched: 0,
            executed: 0,
            deposited: 0,
            procs,
            nodes: [NodeSt::fresh(); MAX_NODES],
            crashes_used: 0,
        }
    }

    fn inter_spec(&self) -> LoopSpec {
        LoopSpec::new(u64::from(self.n_iters), u32::from(self.nodes))
    }

    /// Protocol points a crash may land on. Waiters are excluded (an
    /// enqueued rank holds nothing a peer can't already see), as are
    /// variant-only states — crashes are discretized to the protocol
    /// points the live executor's triggers fire at.
    fn crashable(pc: Pc) -> bool {
        matches!(pc, Pc::Probe | Pc::CritProbe | Pc::Fetch | Pc::Deposit { .. })
    }

    /// Whether `pid` has an enabled transition in `s`. Crashed and
    /// terminated processes never move; waiters are passive unless
    /// they are the FIFO front behind a dead holder (the repair
    /// transition); everything else can always move (lock arrivals
    /// enqueue rather than block). Pseudo-ids `n_procs + q` are the
    /// adversary's crash transitions against process `q`.
    pub fn enabled(&self, s: &State, pid: u8) -> bool {
        let np = self.n_procs();
        if pid >= np {
            let q = pid - np;
            return q < np
                && s.crashes_used < self.crash_budget
                && Self::crashable(s.procs[q as usize]);
        }
        match s.procs[pid as usize] {
            Pc::Done | Pc::Crashed { .. } => false,
            Pc::WaitProbe | Pc::WaitDeposit { .. } => {
                if self.recovery == Recovery::None {
                    return false;
                }
                let node = &s.nodes[usize::from(self.node_of(pid))];
                node.n_waiters > 0
                    && node.waiters[0] == pid
                    && node.holder != FREE
                    && matches!(s.procs[node.holder as usize], Pc::Crashed { .. })
            }
            _ => true,
        }
    }

    /// Enabled process ids, ascending (crash pseudo-ids last).
    pub fn enabled_pids(&self, s: &State) -> Vec<u8> {
        let hi = if self.crash_budget > 0 { 2 * self.n_procs() } else { self.n_procs() };
        (0..hi).filter(|&p| self.enabled(s, p)).collect()
    }

    /// The node-local lease left by a dead rank of node `ni`, if any
    /// ([`Recovery::Leases`] only): `(owner, lo, hi)`.
    fn leased_corpse(&self, procs: &[Pc; MAX_PROCS], ni: usize) -> Option<(u8, u8, u8)> {
        if self.recovery != Recovery::Leases {
            return None;
        }
        (0..self.n_procs()).filter(|&p| usize::from(self.node_of(p)) == ni).find_map(
            |p| match procs[p as usize] {
                Pc::Crashed { lo, hi } if lo != NONE_PAYLOAD => Some((p, lo, hi)),
                _ => None,
            },
        )
    }

    /// Whether node `ni`'s in-flight refill belongs to a corpse: the
    /// `refilling` flag is up but no live rank of the node is anywhere
    /// in the fetch → deposit chain. Returns the corpse to blame.
    fn dead_refiller(&self, procs: &[Pc; MAX_PROCS], ni: usize, refilling: bool) -> Option<u8> {
        if self.recovery == Recovery::None || !refilling {
            return None;
        }
        let mut corpse = None;
        for p in (0..self.n_procs()).filter(|&p| usize::from(self.node_of(p)) == ni) {
            match procs[p as usize] {
                Pc::Fetch
                | Pc::FaaWrite { .. }
                | Pc::Deposit { .. }
                | Pc::WaitDeposit { .. }
                | Pc::CritDeposit { .. }
                | Pc::ObservedEmpty => return None,
                Pc::Crashed { .. } => corpse = Some(p),
                _ => {}
            }
        }
        corpse
    }

    /// Release the node lock: grant to the FIFO head, or free it.
    fn release(node: &mut NodeSt, procs: &mut [Pc; MAX_PROCS]) {
        if node.n_waiters == 0 {
            node.holder = FREE;
            return;
        }
        let h = node.waiters[0];
        for i in 1..node.n_waiters as usize {
            node.waiters[i - 1] = node.waiters[i];
        }
        node.n_waiters -= 1;
        node.waiters[node.n_waiters as usize] = 0;
        node.holder = h;
        procs[h as usize] = match procs[h as usize] {
            Pc::WaitProbe => Pc::CritProbe,
            Pc::WaitDeposit { lo, hi } => Pc::CritDeposit { lo, hi },
            other => unreachable!("lock granted to non-waiting pc {other:?}"),
        };
    }

    /// Mark `[lo, hi)` executed, detecting double execution.
    fn mark_executed(executed: &mut u32, lo: u8, hi: u8, pid: u8) -> Result<(), Violation> {
        for i in lo..hi {
            let bit = 1u32 << i;
            if *executed & bit != 0 {
                return Err(Violation::DoubleExecution { iter: i, pid });
            }
            *executed |= bit;
        }
        Ok(())
    }

    /// Take a sub-chunk from the front range (caller guarantees the
    /// queue is canonical and non-empty), emitting the executor's
    /// probe-and-take window transaction. `unlock` is false only for
    /// the [`Variant::LostUnlock`] bug.
    fn take_front(
        &self,
        node: &mut NodeSt,
        executed: &mut u32,
        pid: u8,
        sink: &mut Option<&mut EventSink>,
        unlock: bool,
    ) -> Result<(u8, u8), Violation> {
        let r = &mut node.ranges[0];
        let spec = LoopSpec::new(u64::from(r.len()), u32::from(self.ranks_per_node));
        let st = SchedState { step: u64::from(r.step), scheduled: u64::from(r.taken) };
        let ctx = WorkerCtx::worker(u32::from(self.local_of(pid)));
        let size = u8c(self.intra_t.chunk_size(&spec, st, ctx).clamp(1, u64::from(r.remaining())));
        let lo = r.lo + r.taken;
        let hi = lo + size;
        r.taken += size;
        r.step += 1;
        node.canon();
        if let Some(sink) = sink.as_deref_mut() {
            let win = node_win(usize::from(self.node_of(pid)));
            let rank = u32::from(self.local_of(pid));
            let mut tx = vec![
                LOCK,
                RmaEvent::Sync,
                get(LO),
                get(HI),
                get(STEP),
                get(TAKEN),
                put(STEP),
                put(TAKEN),
                RmaEvent::Sync,
            ];
            if unlock {
                tx.push(UNLOCK);
            }
            sink.extend(tx.into_iter().map(|e| (win, rank, e)));
        }
        Self::mark_executed(executed, lo, hi, pid)?;
        Ok((lo, hi))
    }

    /// Emit an empty-probe read block (`probe` gets) plus a closing
    /// slice, mirroring the executor's `tx_slice_then` calls.
    fn emit_probe(&self, pid: u8, sink: &mut Option<&mut EventSink>, closing: &[RmaEvent]) {
        if let Some(sink) = sink.as_deref_mut() {
            let win = node_win(usize::from(self.node_of(pid)));
            let rank = u32::from(self.local_of(pid));
            for e in [
                LOCK,
                RmaEvent::Sync,
                get(LO),
                get(HI),
                get(STEP),
                get(TAKEN),
                get(GLOBAL_DONE),
                get(REFILLING),
            ] {
                sink.push((win, rank, e));
            }
            for &e in closing {
                sink.push((win, rank, e));
            }
        }
    }

    /// Apply `pid`'s (unique) enabled transition to `s`. Events the
    /// real executor would issue are appended to `sink` when given.
    ///
    /// Panics if `pid` is not enabled.
    pub fn step(
        &self,
        s: &State,
        pid: u8,
        mut sink: Option<&mut EventSink>,
    ) -> Result<(State, Action), Violation> {
        let mut t = *s;
        let np = self.n_procs();
        if pid >= np {
            // Crash pseudo-transition: kill `victim` where it stands.
            // A crash is silent — no RMA events; locks, flags and the
            // claimed-but-undeposited chunk stay exactly as the
            // victim left them.
            let victim = pid - np;
            assert!(
                victim < np
                    && t.crashes_used < self.crash_budget
                    && Self::crashable(t.procs[victim as usize]),
                "crash step on non-crashable target {victim}"
            );
            let holding_lock = t.nodes[usize::from(self.node_of(victim))].holder == victim;
            let (lo, hi) = match t.procs[victim as usize] {
                // The lease was published atomically with the FAA, so
                // it survives the crash — only under the patch.
                Pc::Deposit { lo, hi }
                    if self.recovery == Recovery::Leases && lo != NONE_PAYLOAD =>
                {
                    (lo, hi)
                }
                _ => (NONE_PAYLOAD, NONE_PAYLOAD),
            };
            t.crashes_used += 1;
            t.procs[victim as usize] = Pc::Crashed { lo, hi };
            return Ok((t, Action::Crash { victim, holding_lock }));
        }
        let ni = usize::from(self.node_of(pid));
        let pc = t.procs[pid as usize];
        let action = match pc {
            Pc::Done | Pc::Crashed { .. } => {
                panic!("step on disabled process {pid} ({pc:?})")
            }

            Pc::WaitProbe | Pc::WaitDeposit { .. } => {
                // Front-waiter lock repair: the bounded-grant timeout
                // fired and the holder is provably dead, so the FIFO
                // head revokes the grant and takes the lock itself.
                let node = &mut t.nodes[ni];
                let dead = node.holder;
                assert!(
                    self.recovery != Recovery::None
                        && node.n_waiters > 0
                        && node.waiters[0] == pid
                        && dead != FREE
                        && matches!(t.procs[dead as usize], Pc::Crashed { .. }),
                    "step on passive waiter {pid} ({pc:?})"
                );
                for i in 1..node.n_waiters as usize {
                    node.waiters[i - 1] = node.waiters[i];
                }
                node.n_waiters -= 1;
                node.waiters[node.n_waiters as usize] = 0;
                node.holder = pid;
                t.procs[pid as usize] = match pc {
                    Pc::WaitProbe => Pc::CritProbe,
                    Pc::WaitDeposit { lo, hi } => Pc::CritDeposit { lo, hi },
                    other => unreachable!("non-waiting pc {other:?}"),
                };
                Action::RepairLock { dead }
            }

            Pc::Probe => {
                let node = &mut t.nodes[ni];
                if self.variant == Variant::RefillWithoutLock && node.n_ranges == 0 {
                    // The bug: the empty-queue/refill decision reads
                    // the flags without taking the window lock.
                    if let Some(sink) = sink.as_deref_mut() {
                        let win = node_win(ni);
                        let rank = u32::from(self.local_of(pid));
                        for e in [
                            get(LO),
                            get(HI),
                            get(STEP),
                            get(TAKEN),
                            get(GLOBAL_DONE),
                            get(REFILLING),
                        ] {
                            sink.push((win, rank, e));
                        }
                    }
                    if node.global_done {
                        t.procs[pid as usize] = Pc::Done;
                        Action::ObserveDone
                    } else if node.refilling {
                        Action::ObservePeer
                    } else {
                        t.procs[pid as usize] = Pc::ObservedEmpty;
                        Action::ObserveEmpty
                    }
                } else if node.holder == FREE {
                    debug_assert_eq!(node.n_waiters, 0, "free lock with waiters");
                    node.holder = pid;
                    t.procs[pid as usize] = Pc::CritProbe;
                    Action::Acquire
                } else if self.recovery != Recovery::None
                    && node.n_waiters == 0
                    && matches!(t.procs[node.holder as usize], Pc::Crashed { .. })
                {
                    // No queue to repair from: the arriving prober
                    // detects the dead holder and seizes directly.
                    let dead = node.holder;
                    node.holder = pid;
                    t.procs[pid as usize] = Pc::CritProbe;
                    Action::RepairLock { dead }
                } else {
                    let depth = node.push_waiter(pid);
                    t.procs[pid as usize] = Pc::WaitProbe;
                    Action::Enqueue { depth }
                }
            }

            Pc::CritProbe => {
                let node = &mut t.nodes[ni];
                debug_assert_eq!(node.holder, pid);
                node.canon();
                if node.n_ranges > 0 {
                    let unlock = self.variant != Variant::LostUnlock;
                    let (lo, hi) =
                        self.take_front(node, &mut t.executed, pid, &mut sink, unlock)?;
                    if unlock {
                        Self::release(node, &mut t.procs);
                    }
                    t.procs[pid as usize] = Pc::Probe;
                    Action::TakeSub { lo, hi }
                } else if let Some((owner, lo, hi)) = self.leased_corpse(&t.procs, ni) {
                    // Reclaim, folded into the probe critical section
                    // exactly like the live executor's empty-branch
                    // lease scan: re-deposit the dead owner's chunk
                    // and settle its lease. The prober keeps the lock
                    // and takes a sub-chunk on its next step.
                    for i in lo..hi {
                        let bit = 1u32 << i;
                        if t.deposited & bit != 0 {
                            return Err(Violation::DepositOverlap { lo, hi, pid });
                        }
                        t.deposited |= bit;
                    }
                    node.push_range(lo, hi);
                    node.refilling = false;
                    t.procs[owner as usize] = Pc::Crashed { lo: NONE_PAYLOAD, hi: NONE_PAYLOAD };
                    Action::Reclaim { owner, lo, hi }
                } else if let Some(dead) = self.dead_refiller(&t.procs, ni, node.refilling) {
                    // Refill failover: the in-flight refill belongs to
                    // a corpse, so clear the flag and let the decision
                    // below re-elect on the next step.
                    node.refilling = false;
                    Action::RefillFailover { dead }
                } else if node.global_done {
                    self.emit_probe(pid, &mut sink, &[UNLOCK]);
                    Self::release(node, &mut t.procs);
                    t.procs[pid as usize] = Pc::Done;
                    Action::ProbeDone
                } else if !node.refilling {
                    node.refilling = true;
                    self.emit_probe(pid, &mut sink, &[put(REFILLING), RmaEvent::Sync, UNLOCK]);
                    Self::release(node, &mut t.procs);
                    t.procs[pid as usize] = Pc::Fetch;
                    Action::BecomeRefiller
                } else {
                    self.emit_probe(pid, &mut sink, &[UNLOCK]);
                    Self::release(node, &mut t.procs);
                    t.procs[pid as usize] = Pc::Probe;
                    Action::PeerRefilling
                }
            }

            Pc::ObservedEmpty => {
                let node = &mut t.nodes[ni];
                if node.refilling {
                    return Err(Violation::ConcurrentRefill { node: self.node_of(pid), pid });
                }
                if node.n_ranges > 0 {
                    return Err(Violation::RefillWhileNonEmpty { node: self.node_of(pid), pid });
                }
                node.refilling = true;
                if let Some(sink) = sink.as_deref_mut() {
                    sink.push((node_win(ni), u32::from(self.local_of(pid)), put(REFILLING)));
                }
                t.procs[pid as usize] = Pc::Fetch;
                Action::CommitRefill
            }

            Pc::Fetch => {
                if self.variant == Variant::NonAtomicFaa {
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.push((GLOBAL_WIN, u32::from(pid), get(GSTEP)));
                        sink.push((GLOBAL_WIN, u32::from(pid), get(GSCHED)));
                    }
                    t.procs[pid as usize] = Pc::FaaWrite { step: t.g_step, sched: t.g_sched };
                    Action::FaaRead
                } else {
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.push((
                            GLOBAL_WIN,
                            u32::from(pid),
                            RmaEvent::Atomic {
                                target: 0,
                                disp: GSTEP,
                                op: AtomicOpKind::FetchAndOp,
                            },
                        ));
                        sink.push((GLOBAL_WIN, u32::from(pid), RmaEvent::Flush { target: 0 }));
                    }
                    let spec = self.inter_spec();
                    let mut st =
                        SchedState { step: u64::from(t.g_step), scheduled: u64::from(t.g_sched) };
                    if st.exhausted(&spec) {
                        t.procs[pid as usize] = Pc::Deposit { lo: NONE_PAYLOAD, hi: NONE_PAYLOAD };
                        Action::FetchExhausted
                    } else {
                        let size = self.inter_t.chunk_size(&spec, st, WorkerCtx::default());
                        let chunk = st.take(&spec, size).expect("not exhausted");
                        t.g_step = u8c(st.step);
                        t.g_sched = u8c(st.scheduled);
                        let (lo, hi) = (u8c(chunk.start), u8c(chunk.end()));
                        t.procs[pid as usize] = Pc::Deposit { lo, hi };
                        Action::FetchChunk { lo, hi }
                    }
                }
            }

            Pc::FaaWrite { step, sched } => {
                let spec = self.inter_spec();
                let mut st = SchedState { step: u64::from(step), scheduled: u64::from(sched) };
                if st.exhausted(&spec) {
                    t.procs[pid as usize] = Pc::Deposit { lo: NONE_PAYLOAD, hi: NONE_PAYLOAD };
                    Action::FaaWriteExhausted
                } else {
                    let size = self.inter_t.chunk_size(&spec, st, WorkerCtx::default());
                    let chunk = st.take(&spec, size).expect("not exhausted");
                    // The blind write: overwrites any advance a
                    // concurrent fetcher made since the stale read.
                    t.g_step = u8c(st.step);
                    t.g_sched = u8c(st.scheduled);
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.push((GLOBAL_WIN, u32::from(pid), put(GSTEP)));
                        sink.push((GLOBAL_WIN, u32::from(pid), put(GSCHED)));
                    }
                    let (lo, hi) = (u8c(chunk.start), u8c(chunk.end()));
                    t.procs[pid as usize] = Pc::Deposit { lo, hi };
                    Action::FaaWriteChunk { lo, hi }
                }
            }

            Pc::Deposit { lo, hi } => {
                let node = &mut t.nodes[ni];
                if node.holder == FREE {
                    debug_assert_eq!(node.n_waiters, 0, "free lock with waiters");
                    node.holder = pid;
                    t.procs[pid as usize] = Pc::CritDeposit { lo, hi };
                    Action::Acquire
                } else if self.recovery != Recovery::None
                    && node.n_waiters == 0
                    && matches!(t.procs[node.holder as usize], Pc::Crashed { .. })
                {
                    let dead = node.holder;
                    node.holder = pid;
                    t.procs[pid as usize] = Pc::CritDeposit { lo, hi };
                    Action::RepairLock { dead }
                } else {
                    let depth = node.push_waiter(pid);
                    t.procs[pid as usize] = Pc::WaitDeposit { lo, hi };
                    Action::Enqueue { depth }
                }
            }

            Pc::CritDeposit { lo, hi } => {
                let node = &mut t.nodes[ni];
                debug_assert_eq!(node.holder, pid);
                node.refilling = false;
                if lo == NONE_PAYLOAD {
                    if let Some(sink) = sink.as_deref_mut() {
                        let win = node_win(ni);
                        let rank = u32::from(self.local_of(pid));
                        for e in [LOCK, put(GLOBAL_DONE), put(REFILLING), RmaEvent::Sync, UNLOCK] {
                            sink.push((win, rank, e));
                        }
                    }
                    node.global_done = true;
                    node.canon();
                    let done = node.n_ranges == 0;
                    Self::release(node, &mut t.procs);
                    t.procs[pid as usize] = if done { Pc::Done } else { Pc::Probe };
                    Action::DepositExhausted { done }
                } else {
                    if let Some(sink) = sink.as_deref_mut() {
                        let win = node_win(ni);
                        let rank = u32::from(self.local_of(pid));
                        for e in [
                            LOCK,
                            put(LO),
                            put(HI),
                            put(STEP),
                            put(TAKEN),
                            put(REFILLING),
                            RmaEvent::Sync,
                            UNLOCK,
                        ] {
                            sink.push((win, rank, e));
                        }
                    }
                    for i in lo..hi {
                        let bit = 1u32 << i;
                        if t.deposited & bit != 0 {
                            return Err(Violation::DepositOverlap { lo, hi, pid });
                        }
                        t.deposited |= bit;
                    }
                    node.push_range(lo, hi);
                    // The refiller immediately takes its own first
                    // sub-chunk under the same lock grant (the
                    // executor's deposit path calls `execute_sub`).
                    let (sub_lo, sub_hi) =
                        self.take_front(node, &mut t.executed, pid, &mut sink, true)?;
                    Self::release(node, &mut t.procs);
                    t.procs[pid as usize] = Pc::Probe;
                    Action::DepositChunk { lo, hi, sub_lo, sub_hi }
                }
            }
        };
        Ok((t, action))
    }

    /// Terminal-state coverage check: if every process is `Done` (or
    /// crashed — a corpse is terminated, not stuck), every iteration
    /// must have been executed. This is where a lease-free crash
    /// surfaces as [`Violation::LostIterations`].
    pub fn check_terminal(&self, s: &State) -> Result<(), Violation> {
        let all_done = (0..self.n_procs())
            .all(|p| matches!(s.procs[p as usize], Pc::Done | Pc::Crashed { .. }));
        if all_done {
            let missing = self.full_mask() & !s.executed;
            if missing != 0 {
                return Err(Violation::LostIterations { missing });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(inter: Kind, intra: Kind) -> Config {
        Config::new(2, 2, 12, inter, intra)
    }

    #[test]
    fn initial_state_everyone_probing() {
        let c = cfg(Kind::GSS, Kind::SS);
        let s = c.initial();
        assert_eq!(c.enabled_pids(&s), vec![0, 1, 2, 3]);
        assert_eq!(s.executed, 0);
        assert_eq!(c.full_mask(), 0xFFF);
    }

    #[test]
    fn serial_run_covers_exactly_once() {
        // Always stepping the lowest enabled pid is one legal
        // schedule; it must terminate with full coverage.
        for inter in Kind::PAPER {
            for intra in Kind::PAPER {
                let c = cfg(inter, intra);
                let mut s = c.initial();
                let mut steps = 0;
                loop {
                    let en = c.enabled_pids(&s);
                    let Some(&pid) = en.first() else { break };
                    let (next, _) = c
                        .step(&s, pid, None)
                        .unwrap_or_else(|v| panic!("{inter}/{intra}: unexpected violation {v:?}"));
                    // The peer-refilling probe is the only self-loop,
                    // and the serial schedule never creates one (the
                    // refiller always runs first).
                    s = next;
                    steps += 1;
                    assert!(steps < 10_000, "{inter}/{intra}: serial run diverged");
                }
                assert_eq!(s.executed, c.full_mask(), "{inter}/{intra}");
                c.check_terminal(&s).expect("coverage");
                assert_eq!(s.deposited, c.full_mask(), "{inter}/{intra}");
            }
        }
    }

    #[test]
    fn model_take_matches_local_queue() {
        // The critical-section take must reproduce
        // `LocalQueue::take_sub_chunk_for` exactly: same dls calls,
        // same clamping, same FIFO handling.
        for intra in Kind::PAPER {
            let c = Config::new(1, 3, 17, Kind::STATIC, intra);
            let mut s = c.initial();
            s.nodes[0].push_range(0, 17);
            s.deposited = (1 << 17) - 1;
            let mut q = hier::queue::LocalQueue::new();
            q.deposit(0, 17);

            // Drive pid 0 only: Probe -> CritProbe -> TakeSub.
            let mut model_subs = Vec::new();
            loop {
                let (s1, a) = c.step(&s, 0, None).expect("no violation");
                s = s1;
                match a {
                    Action::Acquire => {}
                    Action::TakeSub { lo, hi } => model_subs.push((u64::from(lo), u64::from(hi))),
                    Action::BecomeRefiller => break, // queue drained
                    other => panic!("unexpected action {other:?}"),
                }
            }
            let mut queue_subs = Vec::new();
            while let Some(sub) =
                q.take_sub_chunk_for(&Technique::from_kind(intra), 3, WorkerCtx::worker(0))
            {
                queue_subs.push((sub.start, sub.end));
            }
            assert_eq!(model_subs, queue_subs, "{intra}");
        }
    }

    #[test]
    fn fetch_chunks_match_dls_sequence() {
        // The model's global fetches must walk the same chunk
        // sequence as driving dls directly.
        let c = Config::new(2, 1, 20, Kind::TSS, Kind::SS);
        let mut s = c.initial();
        let mut fetched = Vec::new();
        'outer: loop {
            for pid in 0..c.n_procs() {
                if c.enabled(&s, pid) {
                    let (s1, a) = c.step(&s, pid, None).expect("no violation");
                    s = s1;
                    if let Action::FetchChunk { lo, hi } = a {
                        fetched.push((u64::from(lo), u64::from(hi)));
                    }
                    continue 'outer;
                }
            }
            break;
        }
        let spec = LoopSpec::new(20, 2);
        let t = Technique::tss();
        let mut st = SchedState::START;
        let mut expect = Vec::new();
        while !st.exhausted(&spec) {
            let size = t.chunk_size(&spec, st, WorkerCtx::default());
            let ch = st.take(&spec, size).expect("not exhausted");
            expect.push((ch.start, ch.end()));
        }
        assert_eq!(fetched, expect);
    }

    #[test]
    fn waiters_fifo_and_bounded() {
        let c = Config::new(1, 3, 8, Kind::STATIC, Kind::SS);
        let mut s = c.initial();
        // pid 0 acquires; pids 1, 2 enqueue in order.
        let (s1, a) = c.step(&s, 0, None).expect("ok");
        assert_eq!(a, Action::Acquire);
        s = s1;
        let (s1, a) = c.step(&s, 1, None).expect("ok");
        assert_eq!(a, Action::Enqueue { depth: 1 });
        s = s1;
        let (s1, a) = c.step(&s, 2, None).expect("ok");
        assert_eq!(a, Action::Enqueue { depth: 2 });
        s = s1;
        assert!(u32::from(s.nodes[0].n_waiters) == 2);
        // pid 0 finishes its critical section: the lock must hand to
        // pid 1 (FIFO), not pid 2.
        let (s1, _) = c.step(&s, 0, None).expect("ok");
        assert_eq!(s1.nodes[0].holder, 1);
        assert_eq!(s1.procs[1], Pc::CritProbe);
        assert_eq!(s1.procs[2], Pc::WaitProbe);
    }
}
