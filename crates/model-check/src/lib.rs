//! # model-check — small-scope model checking of the two-level queue
//!
//! The paper's MPI+MPI approach hinges on a concurrent protocol: a
//! global work queue advanced by `MPI_Fetch_and_op`, per-node local
//! queues guarded by `MPI_Win_lock`, a `refilling` flag electing the
//! fastest rank as refiller, and a `global_done` flag for
//! termination. The executors in `hier` run *one* schedule per
//! configuration; this crate checks **all of them** at small scope:
//!
//! * [`model`] — the protocol as a compact transition system whose
//!   chunk arithmetic is the real `dls` code, with seeded-broken
//!   [`model::Variant`]s (unlocked refill, non-atomic FAA, lost
//!   unlock) and a bounded crash adversary
//!   ([`model::Config::with_crashes`]) against graded
//!   [`model::Recovery`] levels — proving the lease protocol
//!   necessary (lease-free recovery loses iterations) and sufficient
//!   (exactly-once and deadlock-free under crashes) at small scope;
//! * [`explore`] — BFS over every reachable interleaving with state
//!   hashing, optional ample-set partial-order reduction, deadlock
//!   detection, weakly-fair livelock (non-progress SCC) detection and
//!   the FCFS bounded-bypass bound;
//! * [`replay`] — minimal counterexample traces re-emitted as the
//!   executor's RMA access log (same [`hier::sim::layout`] windows
//!   and displacements) and fed through `rma-check`;
//! * [`switch`] — the AUTO mode's technique-switch adversary: DFS over
//!   every ladder choice at every batch boundary, a crash sweep over
//!   every event placement (switch-then-crash included), and a
//!   seeded-broken re-basing variant whose duplicate-execution
//!   counterexample the checker must find.
//!
//! ```
//! use dls::Kind;
//! use model_check::{explore, model};
//!
//! let cfg = model::Config::new(1, 2, 6, Kind::GSS, Kind::SS);
//! let out = explore::explore(
//!     &cfg,
//!     &explore::Options { wait_bound: Some(cfg.wait_bound()), ..Default::default() },
//! );
//! assert!(out.violation.is_none());
//! assert!(out.terminals > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod explore;
pub mod model;
pub mod replay;
pub mod switch;

pub use explore::{explore, Counterexample, Options, Outcome};
pub use model::{Config, Recovery, Variant, Violation};
pub use replay::{replay, Replay};
pub use switch::{
    crash_sweep, explore_switch_plans, SwitchConfig, SwitchOutcome, SwitchPlan, SwitchVariant,
    SwitchViolation,
};
