//! RMA access logging — the raw material of the `rma-check` crate's
//! epoch-discipline and happens-before analyses.
//!
//! A [`Window`](crate::Window) put into recording mode with
//! [`Window::record_to`](crate::Window::record_to) appends one
//! [`RmaRecord`] per passive-target operation (lock/unlock of either
//! kind, `lock_all`/`unlock_all`, `sync`, `flush`, get/put including
//! ranges, `fetch_and_op`/`compare_and_swap`) to a shared [`RmaLog`].
//! Records carry the acting rank, the window id, and a *global* sequence
//! number drawn from one atomic counter, so logs from every rank of
//! every window interleave into a single totally-ordered trace.
//!
//! Sequencing discipline (what makes the log checkable):
//!
//! * lock events are stamped **after** the lock is granted;
//! * unlock events are stamped **before** the lock is released;
//!
//! so for a correctly-synchronized run the `[lock.seq, unlock.seq]`
//! intervals of an exclusive lock never overlap another rank's interval
//! on the same target — exactly the invariant the checker verifies.
//!
//! Recording is per handle: each rank attaches its own handle, which is
//! what backends do when their config asks for an RMA log.

use crate::window::LockKind;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which read-modify-write primitive an [`RmaEvent::Atomic`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOpKind {
    /// `MPI_Fetch_and_op` (also logged for `MPI_Accumulate`, which the
    /// runtime implements as fetch-and-op with the result dropped).
    FetchAndOp,
    /// `MPI_Compare_and_swap`.
    CompareAndSwap,
}

/// One logged window operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmaEvent {
    /// Emitted once per rank when its handle enters recording mode;
    /// declares the window's shape to the checker.
    Attach {
        /// Window created with `MPI_Win_allocate_shared`.
        shared: bool,
        /// Size of the communicator the window spans.
        comm_size: u32,
    },
    /// `MPI_Win_lock` granted (also logged for a *successful*
    /// `try_lock_exclusive`; failed attempts are not access events).
    Lock {
        /// Lock kind requested.
        kind: LockKind,
        /// Target rank whose region the epoch covers.
        target: u32,
    },
    /// `MPI_Win_unlock` issued (stamped before the release).
    Unlock {
        /// Lock kind released.
        kind: LockKind,
        /// Target rank.
        target: u32,
    },
    /// `MPI_Win_lock_all` granted (a shared epoch on every region).
    LockAll,
    /// `MPI_Win_unlock_all` issued.
    UnlockAll,
    /// `MPI_Win_sync` — the unified-model memory barrier.
    Sync,
    /// `MPI_Win_flush(target)`.
    Flush {
        /// Target rank.
        target: u32,
    },
    /// A barrier over the window's communicator, reported by the
    /// application via [`Window::note_barrier`](crate::Window::note_barrier).
    Barrier,
    /// `MPI_Get` of `len` elements at (`target`, `disp`).
    Get {
        /// Target rank.
        target: u32,
        /// First displacement read.
        disp: usize,
        /// Elements read.
        len: usize,
    },
    /// `MPI_Put` of `len` elements at (`target`, `disp`).
    Put {
        /// Target rank.
        target: u32,
        /// First displacement written.
        disp: usize,
        /// Elements written.
        len: usize,
    },
    /// An RMA atomic on a single element.
    Atomic {
        /// Target rank.
        target: u32,
        /// Displacement operated on.
        disp: usize,
        /// Which primitive.
        op: AtomicOpKind,
    },
}

/// One entry of the access log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RmaRecord {
    /// Id of the window the operation targeted (unique per allocation
    /// within the process).
    pub win: u64,
    /// Rank of the origin process *within the window's communicator*.
    pub rank: u32,
    /// Global sequence number: a total order consistent with real time
    /// across all ranks and windows sharing one [`RmaLog`].
    pub seq: u64,
    /// The operation.
    pub event: RmaEvent,
}

#[derive(Default)]
struct Inner {
    seq: AtomicU64,
    events: Mutex<Vec<RmaRecord>>,
}

/// A shared, append-only RMA access log. Cloning is cheap and clones
/// append to the same log; the handle is `Send + Sync`, so one log can
/// collect every rank of a [`Universe::run`](crate::Universe::run).
#[derive(Clone, Default)]
pub struct RmaLog {
    inner: Arc<Inner>,
}

impl RmaLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event for (`win`, `rank`), stamping the next global
    /// sequence number. Used by instrumented [`Window`](crate::Window)
    /// handles; applications normally never call this directly, but
    /// tests may, to hand-build protocol traces.
    pub fn push(&self, win: u64, rank: u32, event: RmaEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::SeqCst);
        self.inner.events.lock().push(RmaRecord { win, rank, seq, event });
    }

    /// Snapshot of all records so far, sorted by sequence number.
    pub fn records(&self) -> Vec<RmaRecord> {
        let mut v = self.inner.events.lock().clone();
        v.sort_by_key(|r| r.seq);
        v
    }

    /// Number of records logged so far.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for RmaLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmaLog").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_increasing_seqs() {
        let log = RmaLog::new();
        log.push(0, 0, RmaEvent::Sync);
        log.push(0, 1, RmaEvent::Sync);
        let r = log.records();
        assert_eq!(r.len(), 2);
        assert!(r[0].seq < r[1].seq);
        assert_eq!(r[0].rank, 0);
        assert_eq!(r[1].rank, 1);
    }

    #[test]
    fn clones_share_the_log() {
        let log = RmaLog::new();
        let clone = log.clone();
        clone.push(3, 2, RmaEvent::LockAll);
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].win, 3);
    }
}
