//! A queued reader/writer lock with *manual* acquire/release (MPI's
//! `MPI_Win_lock` / `MPI_Win_unlock` are separate calls, so a guard-based
//! lock cannot model them) and contention accounting.
//!
//! The contention counters matter: the paper attributes the poor
//! performance of `X+SS` under MPI+MPI to `MPI_Win_lock`'s *lock-polling*
//! implementation, where each blocked process repeatedly issues
//! lock-attempt messages (Zhao, Balaji & Gropp, ISPDC 2016). The
//! `cluster-sim` crate turns these counts into virtual time; here they
//! are exposed as statistics.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct Inner {
    exclusive: bool,
    shared: u32,
    /// Threads currently blocked in an acquire.
    waiting: u32,
}

/// Cumulative lock statistics, updated atomically.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Total successful acquisitions (shared + exclusive).
    pub acquisitions: AtomicU64,
    /// Acquisitions that had to block at least once.
    pub contended: AtomicU64,
    /// Total wake-ups while the lock was still unavailable — a proxy for
    /// the number of lock-attempt polls an MPI implementation would send.
    pub polls: AtomicU64,
}

impl LockStats {
    /// Snapshot `(acquisitions, contended, polls)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.acquisitions.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
            self.polls.load(Ordering::Relaxed),
        )
    }
}

/// Manual-release reader/writer lock with FIFO-ish wakeup and contention
/// statistics.
#[derive(Default)]
pub struct QueuedLock {
    inner: Mutex<Inner>,
    cv: Condvar,
    stats: LockStats,
}

impl QueuedLock {
    /// New unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire exclusively, blocking until no holder remains. Returns
    /// the number of failed poll attempts (wake-ups while the lock was
    /// still unavailable) — the caller's share of the lock-attempt
    /// traffic recorded in [`LockStats::polls`].
    pub fn lock_exclusive(&self) -> u64 {
        let mut inner = self.inner.lock();
        let mut polls = 0u64;
        while inner.exclusive || inner.shared > 0 {
            polls += 1;
            inner.waiting += 1;
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            self.cv.wait(&mut inner);
            inner.waiting -= 1;
        }
        inner.exclusive = true;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if polls > 0 {
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        polls
    }

    /// Acquire shared, blocking while an exclusive holder exists.
    /// Returns the caller's failed poll attempts, as
    /// [`QueuedLock::lock_exclusive`] does.
    pub fn lock_shared(&self) -> u64 {
        let mut inner = self.inner.lock();
        let mut polls = 0u64;
        while inner.exclusive {
            polls += 1;
            inner.waiting += 1;
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            self.cv.wait(&mut inner);
            inner.waiting -= 1;
        }
        inner.shared += 1;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if polls > 0 {
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        polls
    }

    /// Release an exclusive hold. Returns `false` (and does nothing) if
    /// the lock is not exclusively held.
    pub fn unlock_exclusive(&self) -> bool {
        let mut inner = self.inner.lock();
        if !inner.exclusive {
            return false;
        }
        inner.exclusive = false;
        self.cv.notify_all();
        true
    }

    /// Release one shared hold. Returns `false` if no shared hold exists.
    pub fn unlock_shared(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.shared == 0 {
            return false;
        }
        inner.shared -= 1;
        if inner.shared == 0 {
            self.cv.notify_all();
        }
        true
    }

    /// Try to acquire exclusively without blocking.
    pub fn try_lock_exclusive(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.exclusive || inner.shared > 0 {
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.exclusive = true;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Threads currently blocked waiting for this lock.
    pub fn waiters(&self) -> u32 {
        self.inner.lock().waiting
    }

    /// Contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn exclusive_excludes() {
        let lock = Arc::new(QueuedLock::new());
        lock.lock_exclusive();
        assert!(!lock.try_lock_exclusive());
        assert!(lock.unlock_exclusive());
        assert!(lock.try_lock_exclusive());
        assert!(lock.unlock_exclusive());
    }

    #[test]
    fn shared_allows_readers_blocks_writer() {
        let lock = QueuedLock::new();
        lock.lock_shared();
        lock.lock_shared();
        assert!(!lock.try_lock_exclusive());
        assert!(lock.unlock_shared());
        assert!(lock.unlock_shared());
        assert!(lock.try_lock_exclusive());
    }

    #[test]
    fn unlock_without_lock_rejected() {
        let lock = QueuedLock::new();
        assert!(!lock.unlock_exclusive());
        assert!(!lock.unlock_shared());
    }

    #[test]
    fn contention_counted() {
        let lock = Arc::new(QueuedLock::new());
        lock.lock_exclusive();
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            l2.lock_exclusive();
            l2.unlock_exclusive();
        });
        // Give the second thread a chance to block.
        while lock.waiters() == 0 {
            thread::yield_now();
        }
        lock.unlock_exclusive();
        t.join().unwrap();
        let (acq, contended, polls) = lock.stats().snapshot();
        assert_eq!(acq, 2);
        assert!(contended >= 1);
        assert!(polls >= 1);
    }

    #[test]
    fn mutual_exclusion_under_stress() {
        let lock = Arc::new(QueuedLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    lock.lock_exclusive();
                    // Non-atomic read-modify-write protected by our lock.
                    let v = *counter.lock();
                    *counter.lock() = v + 1;
                    lock.unlock_exclusive();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 200);
    }
}
