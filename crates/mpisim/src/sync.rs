//! A FIFO ticket reader/writer lock with *manual* acquire/release (MPI's
//! `MPI_Win_lock` / `MPI_Win_unlock` are separate calls, so a guard-based
//! lock cannot model them) and contention accounting.
//!
//! Acquisition order is strict arrival order: every acquirer — shared or
//! exclusive — draws a ticket, and a ticket is admitted only after every
//! earlier ticket has been admitted. A reader queued behind a writer
//! waits for that writer even while other readers hold the lock, so a
//! writer can be bypassed by at most the readers that arrived before it.
//! This is the FCFS discipline whose bounded-bypass property the
//! `model-check` crate verifies over the hierarchical queue protocol
//! (`wait_bound = ranks_per_node - 1`); the previous condvar
//! `notify_all` implementation allowed unbounded barging, which the
//! model would have had to treat as a potential livelock.
//!
//! The contention counters matter: the paper attributes the poor
//! performance of `X+SS` under MPI+MPI to `MPI_Win_lock`'s *lock-polling*
//! implementation, where each blocked process repeatedly issues
//! lock-attempt messages (Zhao, Balaji & Gropp, ISPDC 2016). The
//! `cluster-sim` crate turns these counts into virtual time; here they
//! are exposed as statistics.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct Inner {
    exclusive: bool,
    shared: u32,
    /// Next ticket to hand to an arriving acquirer.
    next_ticket: u64,
    /// The ticket currently at the head of the queue. `next_ticket -
    /// now_serving` is the number of acquirers still queued.
    now_serving: u64,
}

/// Cumulative lock statistics, updated atomically.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Total successful acquisitions (shared + exclusive).
    pub acquisitions: AtomicU64,
    /// Acquisitions that had to block at least once.
    pub contended: AtomicU64,
    /// Total wake-ups while the lock was still unavailable — a proxy for
    /// the number of lock-attempt polls an MPI implementation would send.
    pub polls: AtomicU64,
    /// Exclusive holds revoked from dead holders via
    /// [`QueuedLock::revoke_exclusive`] (lock repair after a
    /// crash-while-holding-lock).
    pub revocations: AtomicU64,
}

impl LockStats {
    /// Snapshot `(acquisitions, contended, polls)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.acquisitions.load(Ordering::Relaxed),
            self.contended.load(Ordering::Relaxed),
            self.polls.load(Ordering::Relaxed),
        )
    }
}

/// Manual-release reader/writer lock with strict FIFO admission and
/// contention statistics.
#[derive(Default)]
pub struct QueuedLock {
    inner: Mutex<Inner>,
    cv: Condvar,
    stats: LockStats,
}

impl QueuedLock {
    /// New unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire exclusively, blocking until this caller reaches the head
    /// of the ticket queue *and* no holder remains. Returns the number
    /// of failed poll attempts (wake-ups while the lock was still
    /// unavailable) — the caller's share of the lock-attempt traffic
    /// recorded in [`LockStats::polls`].
    pub fn lock_exclusive(&self) -> u64 {
        let mut inner = self.inner.lock();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let mut polls = 0u64;
        while inner.now_serving != ticket || inner.exclusive || inner.shared > 0 {
            polls += 1;
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            self.cv.wait(&mut inner);
        }
        inner.now_serving += 1;
        inner.exclusive = true;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if polls > 0 {
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        polls
    }

    /// Acquire shared, blocking until this caller reaches the head of
    /// the ticket queue and no exclusive holder exists. Consecutive
    /// shared tickets admit each other in turn, so a batch of readers
    /// still overlaps — but a reader queued behind a writer waits for
    /// it. Returns the caller's failed poll attempts, as
    /// [`QueuedLock::lock_exclusive`] does.
    pub fn lock_shared(&self) -> u64 {
        let mut inner = self.inner.lock();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let mut polls = 0u64;
        while inner.now_serving != ticket || inner.exclusive {
            polls += 1;
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            self.cv.wait(&mut inner);
        }
        inner.now_serving += 1;
        inner.shared += 1;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if polls > 0 {
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        // The ticket behind us may be another reader that can now enter.
        self.cv.notify_all();
        polls
    }

    /// Release an exclusive hold. Returns `false` (and does nothing) if
    /// the lock is not exclusively held.
    pub fn unlock_exclusive(&self) -> bool {
        let mut inner = self.inner.lock();
        if !inner.exclusive {
            return false;
        }
        inner.exclusive = false;
        self.cv.notify_all();
        true
    }

    /// Forcibly release an exclusive hold on behalf of a *dead* holder
    /// (lock repair). The ticket queue is untouched: the next queued
    /// acquirer is admitted normally, preserving FIFO order for the
    /// survivors. Returns `false` if no exclusive hold exists. Counts
    /// into [`LockStats::revocations`].
    pub fn revoke_exclusive(&self) -> bool {
        let mut inner = self.inner.lock();
        if !inner.exclusive {
            return false;
        }
        inner.exclusive = false;
        self.stats.revocations.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        true
    }

    /// Release one shared hold. Returns `false` if no shared hold exists.
    pub fn unlock_shared(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.shared == 0 {
            return false;
        }
        inner.shared -= 1;
        if inner.shared == 0 {
            self.cv.notify_all();
        }
        true
    }

    /// Try to acquire exclusively without blocking. Fails if the lock is
    /// held *or* any acquirer is queued ahead — a trylock may not barge
    /// past the ticket line.
    pub fn try_lock_exclusive(&self) -> bool {
        let mut inner = self.inner.lock();
        if inner.next_ticket != inner.now_serving || inner.exclusive || inner.shared > 0 {
            self.stats.polls.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.next_ticket += 1;
        inner.now_serving += 1;
        inner.exclusive = true;
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Acquirers currently queued (ticket drawn, not yet admitted).
    pub fn waiters(&self) -> u32 {
        let inner = self.inner.lock();
        u32::try_from(inner.next_ticket - inner.now_serving).unwrap_or(u32::MAX)
    }

    /// Contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn exclusive_excludes() {
        let lock = Arc::new(QueuedLock::new());
        lock.lock_exclusive();
        assert!(!lock.try_lock_exclusive());
        assert!(lock.unlock_exclusive());
        assert!(lock.try_lock_exclusive());
        assert!(lock.unlock_exclusive());
    }

    #[test]
    fn shared_allows_readers_blocks_writer() {
        let lock = QueuedLock::new();
        lock.lock_shared();
        lock.lock_shared();
        assert!(!lock.try_lock_exclusive());
        assert!(lock.unlock_shared());
        assert!(lock.unlock_shared());
        assert!(lock.try_lock_exclusive());
    }

    #[test]
    fn unlock_without_lock_rejected() {
        let lock = QueuedLock::new();
        assert!(!lock.unlock_exclusive());
        assert!(!lock.unlock_shared());
    }

    #[test]
    fn revoke_frees_dead_hold_and_counts() {
        let lock = Arc::new(QueuedLock::new());
        // No hold: nothing to revoke.
        assert!(!lock.revoke_exclusive());
        lock.lock_exclusive();
        // A peer revokes the (dead) holder's lock; the queue drains
        // normally afterwards.
        assert!(lock.revoke_exclusive());
        assert!(lock.try_lock_exclusive());
        assert!(lock.unlock_exclusive());
        assert_eq!(lock.stats().revocations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn contention_counted() {
        let lock = Arc::new(QueuedLock::new());
        lock.lock_exclusive();
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            l2.lock_exclusive();
            l2.unlock_exclusive();
        });
        // Give the second thread a chance to block.
        while lock.waiters() == 0 {
            thread::yield_now();
        }
        lock.unlock_exclusive();
        t.join().unwrap();
        let (acq, contended, polls) = lock.stats().snapshot();
        assert_eq!(acq, 2);
        assert!(contended >= 1);
        assert!(polls >= 1);
    }

    #[test]
    fn fifo_grant_order() {
        // Writers queued one at a time must acquire in arrival order.
        let lock = Arc::new(QueuedLock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        lock.lock_exclusive();
        let mut handles = Vec::new();
        for id in 0..4u32 {
            let l = Arc::clone(&lock);
            let o = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                l.lock_exclusive();
                o.lock().push(id);
                l.unlock_exclusive();
            }));
            // Wait until this waiter has drawn its ticket before
            // spawning the next, pinning the arrival order.
            while lock.waiters() < id + 1 {
                thread::yield_now();
            }
        }
        lock.unlock_exclusive();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn trylock_cannot_barge_past_queue() {
        let lock = Arc::new(QueuedLock::new());
        lock.lock_exclusive();
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            l2.lock_exclusive();
            l2.unlock_exclusive();
        });
        while lock.waiters() == 0 {
            thread::yield_now();
        }
        // The queued writer is ahead of us even the instant we release:
        // the trylock must not jump the line.
        lock.unlock_exclusive();
        assert!(!lock.try_lock_exclusive());
        t.join().unwrap();
        // Queue drained: now it succeeds.
        lock.lock_exclusive();
        assert!(lock.unlock_exclusive());
    }

    #[test]
    fn reader_queued_behind_writer_waits() {
        // r1 holds shared; w queued; r2 arrives after w. FIFO means r2
        // must not overlap with r1 — it enters only after w finishes.
        let lock = Arc::new(QueuedLock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        lock.lock_shared();

        let (lw, ow) = (Arc::clone(&lock), Arc::clone(&order));
        let w = thread::spawn(move || {
            lw.lock_exclusive();
            ow.lock().push("w");
            lw.unlock_exclusive();
        });
        while lock.waiters() == 0 {
            thread::yield_now();
        }

        let (lr, or) = (Arc::clone(&lock), Arc::clone(&order));
        let r2 = thread::spawn(move || {
            lr.lock_shared();
            or.lock().push("r2");
            lr.unlock_shared();
        });
        while lock.waiters() < 2 {
            thread::yield_now();
        }

        lock.unlock_shared();
        w.join().unwrap();
        r2.join().unwrap();
        assert_eq!(*order.lock(), vec!["w", "r2"]);
    }

    #[test]
    fn mutual_exclusion_under_stress() {
        let lock = Arc::new(QueuedLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    lock.lock_exclusive();
                    // Non-atomic read-modify-write protected by our lock.
                    let v = *counter.lock();
                    *counter.lock() = v + 1;
                    lock.unlock_exclusive();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 200);
    }
}
