//! Nonblocking point-to-point operations (`MPI_Isend` / `MPI_Irecv`).
//!
//! Sends are buffered in this runtime, so an `isend` completes
//! immediately — matching MPI's standard-mode semantics for small
//! messages. An `irecv` posts nothing; it captures the matching
//! criteria and performs the matched receive on
//! [`RecvRequest::wait`], preserving MPI's non-overtaking order
//! relative to other receives issued by the same rank *at wait time*.

use crate::comm::Comm;
use crate::error::Result;

/// Handle for a nonblocking send. Completed at creation (buffered).
#[derive(Debug)]
pub struct SendRequest {
    completed: bool,
}

impl SendRequest {
    /// Wait for completion (a no-op for buffered sends).
    pub fn wait(mut self) -> Result<()> {
        self.completed = true;
        Ok(())
    }

    /// Nonblocking completion test.
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle for a nonblocking typed receive.
pub struct RecvRequest<T> {
    comm: Comm,
    src: Option<u32>,
    tag: Option<i32>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> RecvRequest<T> {
    /// Block until a matching message arrives; returns
    /// `(source, tag, value)`.
    pub fn wait(self) -> Result<(u32, i32, T)> {
        self.comm.recv(self.src, self.tag)
    }

    /// Nonblocking completion test: is a matching message queued?
    pub fn test(&self) -> bool {
        self.comm.probe(self.src, self.tag)
    }
}

impl Comm {
    /// `MPI_Isend`: start a nonblocking standard-mode send. The message
    /// is buffered, so the returned request is already complete.
    pub fn isend<T: Send + 'static>(&self, dest: u32, tag: i32, value: T) -> Result<SendRequest> {
        self.send(dest, tag, value)?;
        Ok(SendRequest { completed: true })
    }

    /// `MPI_Irecv`: post a nonblocking receive. Matching happens at
    /// [`RecvRequest::wait`] / [`RecvRequest::test`].
    pub fn irecv<T: Send + 'static>(&self, src: Option<u32>, tag: Option<i32>) -> RecvRequest<T> {
        RecvRequest { comm: self.clone(), src, tag, _marker: std::marker::PhantomData }
    }

    /// `MPI_Sendrecv`: exchange with two (possibly different) partners
    /// without deadlock.
    pub fn sendrecv<S, R>(
        &self,
        dest: u32,
        send_tag: i32,
        value: S,
        src: u32,
        recv_tag: i32,
    ) -> Result<R>
    where
        S: Send + 'static,
        R: Send + 'static,
    {
        self.send(dest, send_tag, value)?;
        let (_, _, v) = self.recv(Some(src), Some(recv_tag))?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Topology, Universe};

    #[test]
    fn isend_completes_immediately() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            if w.rank() == 0 {
                let req = w.isend(1, 0, 7u32).unwrap();
                assert!(req.test());
                req.wait().unwrap();
            } else {
                let (_, _, v): (_, _, u32) = w.recv(Some(0), Some(0)).unwrap();
                assert_eq!(v, 7);
            }
        });
    }

    #[test]
    fn irecv_test_then_wait() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            if w.rank() == 1 {
                let req = w.irecv::<u64>(Some(0), Some(3));
                // Not yet arrived (rank 0 waits for our signal).
                assert!(!req.test());
                w.send(0, 9, ()).unwrap();
                let (_, _, v) = req.wait().unwrap();
                assert_eq!(v, 99);
            } else {
                let (_, _, ()) = w.recv(Some(1), Some(9)).unwrap();
                w.send(1, 3, 99u64).unwrap();
            }
        });
    }

    #[test]
    fn sendrecv_ring_exchange() {
        let out = Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            let right = (w.rank() + 1) % w.size();
            let left = (w.rank() + w.size() - 1) % w.size();
            // Send my rank to the right, receive from the left.
            let v: u32 = w.sendrecv(right, 0, w.rank(), left, 0).unwrap();
            v
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn symmetric_sendrecv_does_not_deadlock() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let peer = 1 - w.rank();
            let v: u32 = w.sendrecv(peer, 0, w.rank() * 10, peer, 0).unwrap();
            assert_eq!(v, peer * 10);
        });
    }
}
