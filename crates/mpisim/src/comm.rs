//! Communicators: rank groups with private mailboxes, a barrier, and
//! split operations (`MPI_Comm_split`, `MPI_Comm_split_type(SHARED)`).

use crate::error::{Error, Result};
use crate::message::{Envelope, Mailbox, INTERNAL_TAG_BASE};
use crate::topology::Topology;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

pub(crate) const TAG_SPLIT: i32 = INTERNAL_TAG_BASE;
pub(crate) const TAG_BCAST: i32 = INTERNAL_TAG_BASE + 1;
pub(crate) const TAG_REDUCE: i32 = INTERNAL_TAG_BASE + 2;
pub(crate) const TAG_GATHER: i32 = INTERNAL_TAG_BASE + 3;
pub(crate) const TAG_SCATTER: i32 = INTERNAL_TAG_BASE + 4;
pub(crate) const TAG_WIN: i32 = INTERNAL_TAG_BASE + 5;
pub(crate) const TAG_SCAN: i32 = INTERNAL_TAG_BASE + 6;
pub(crate) const TAG_ALLTOALL: i32 = INTERNAL_TAG_BASE + 7;

/// Shared state of one communicator: membership, mailboxes, barrier.
pub(crate) struct CommState {
    /// World rank of each member, indexed by communicator rank.
    pub world_ranks: Vec<u32>,
    pub mailboxes: Vec<Arc<Mailbox>>,
    pub barrier: Barrier,
    pub topology: Topology,
    /// `Some(node)` when every member lives on that single node — the
    /// precondition for `MPI_Win_allocate_shared`.
    pub node_scope: Option<u32>,
    /// Universe-wide failure registry, indexed by *world* rank. Shared
    /// by every communicator split from the same world, so a death is
    /// visible everywhere at once.
    pub failed: Arc<Vec<AtomicBool>>,
}

impl CommState {
    pub(crate) fn new(
        world_ranks: Vec<u32>,
        topology: Topology,
        failed: Arc<Vec<AtomicBool>>,
    ) -> Arc<Self> {
        let size = world_ranks.len();
        let node_scope = {
            let first = topology.node_of(world_ranks[0]);
            world_ranks.iter().all(|&r| topology.node_of(r) == first).then_some(first)
        };
        Arc::new(Self {
            world_ranks,
            mailboxes: (0..size).map(|_| Arc::new(Mailbox::new())).collect(),
            barrier: Barrier::new(size),
            topology,
            node_scope,
            failed,
        })
    }
}

/// A communicator handle held by one rank (thread). Cloning yields
/// another handle for the *same* rank; handles are cheap (`Arc` inside).
#[derive(Clone)]
pub struct Comm {
    pub(crate) state: Arc<CommState>,
    pub(crate) rank: u32,
}

impl Comm {
    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> u32 {
        self.state.world_ranks.len() as u32
    }

    /// The world rank of a communicator member.
    pub fn world_rank_of(&self, comm_rank: u32) -> Result<u32> {
        self.state
            .world_ranks
            .get(comm_rank as usize)
            .copied()
            .ok_or(Error::RankOutOfRange { rank: comm_rank, size: self.size() })
    }

    /// The cluster topology the world was launched with.
    pub fn topology(&self) -> Topology {
        self.state.topology
    }

    /// `Some(node)` when this communicator is confined to one compute
    /// node (the precondition for [`crate::Window::allocate_shared`]).
    pub fn node_scope(&self) -> Option<u32> {
        self.state.node_scope
    }

    /// Declare this rank dead (fault injection). From here on, peers'
    /// operations that target it — sends, sourced receives with no
    /// buffered message, window locks/atomics on non-shared windows —
    /// return [`Error::RankFailed`] instead of hanging. The registry is
    /// universe-wide: every communicator and window sees the death.
    pub fn mark_failed(&self) {
        let world = self.state.world_ranks[self.rank as usize] as usize;
        self.state.failed[world].store(true, Ordering::SeqCst);
    }

    /// True when the communicator member `comm_rank` has been declared
    /// dead via [`Comm::mark_failed`] (on any communicator handle).
    pub fn is_failed(&self, comm_rank: u32) -> bool {
        self.state
            .world_ranks
            .get(comm_rank as usize)
            .is_some_and(|&w| self.state.failed[w as usize].load(Ordering::SeqCst))
    }

    /// Blocking typed send (standard mode; buffered, never deadlocks on
    /// its own). Sending to a dead rank returns [`Error::RankFailed`].
    pub fn send<T: Send + 'static>(&self, dest: u32, tag: i32, value: T) -> Result<()> {
        let mb = self
            .state
            .mailboxes
            .get(dest as usize)
            .ok_or(Error::RankOutOfRange { rank: dest, size: self.size() })?;
        if self.is_failed(dest) {
            return Err(Error::RankFailed { rank: dest });
        }
        mb.push(Envelope { src: self.rank, tag, payload: Box::new(value) });
        Ok(())
    }

    /// Blocking typed receive; `src`/`tag` of `None` match anything.
    /// Returns `(source, tag, value)`. A sourced receive from a dead
    /// rank with no matching buffered message returns
    /// [`Error::RankFailed`] instead of blocking forever (messages sent
    /// before the death remain deliverable).
    pub fn recv<T: Send + 'static>(
        &self,
        src: Option<u32>,
        tag: Option<i32>,
    ) -> Result<(u32, i32, T)> {
        if let Some(s) = src {
            if self.is_failed(s) && !self.probe(src, tag) {
                return Err(Error::RankFailed { rank: s });
            }
        }
        self.state.mailboxes[self.rank as usize].recv(src, tag)
    }

    /// Non-blocking probe for a matching message.
    pub fn probe(&self, src: Option<u32>, tag: Option<i32>) -> bool {
        self.state.mailboxes[self.rank as usize].probe(src, tag)
    }

    /// Synchronise all ranks of the communicator.
    pub fn barrier(&self) {
        self.state.barrier.wait();
    }

    /// `MPI_Comm_split`: ranks calling with the same `color` form a new
    /// communicator, ordered by `(key, old rank)`. Collective over the
    /// communicator.
    pub fn split(&self, color: u32, key: u32) -> Result<Comm> {
        let all: Vec<(u32, u32, u32)> = self.allgather((self.rank, color, key))?;
        let mut group: Vec<(u32, u32)> =
            all.iter().filter(|(_, c, _)| *c == color).map(|&(r, _, k)| (k, r)).collect();
        group.sort_unstable();
        let my_new_rank = group
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("caller must be in its own color group") as u32;
        let leader_old_rank = group[0].1;
        if self.rank == leader_old_rank {
            let world_ranks: Vec<u32> =
                group.iter().map(|&(_, r)| self.state.world_ranks[r as usize]).collect();
            let state =
                CommState::new(world_ranks, self.state.topology, Arc::clone(&self.state.failed));
            for &(_, old_rank) in &group[1..] {
                self.send(old_rank, TAG_SPLIT, Arc::clone(&state))?;
            }
            Ok(Comm { state, rank: my_new_rank })
        } else {
            let (_, _, state): (_, _, Arc<CommState>) =
                self.recv(Some(leader_old_rank), Some(TAG_SPLIT))?;
            Ok(Comm { state, rank: my_new_rank })
        }
    }

    /// `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`: the sub-communicator
    /// of ranks sharing this rank's compute node, ordered by world rank.
    pub fn split_shared(&self) -> Result<Comm> {
        let my_world = self.state.world_ranks[self.rank as usize];
        let node = self.state.topology.node_of(my_world);
        self.split(node, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Topology, Universe};

    #[test]
    fn send_recv_roundtrip() {
        let out = Universe::run(Topology::new(1, 2), |p| {
            let world = p.world();
            if world.rank() == 0 {
                world.send(1, 5, String::from("hello")).unwrap();
                0
            } else {
                let (src, tag, s): (_, _, String) = world.recv(Some(0), Some(5)).unwrap();
                assert_eq!((src, tag, s.as_str()), (0, 5, "hello"));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn non_overtaking_same_src_tag() {
        Universe::run(Topology::new(1, 2), |p| {
            let world = p.world();
            if world.rank() == 0 {
                for i in 0..100u32 {
                    world.send(1, 0, i).unwrap();
                }
            } else {
                for i in 0..100u32 {
                    let (_, _, v): (_, _, u32) = world.recv(Some(0), Some(0)).unwrap();
                    assert_eq!(v, i);
                }
            }
        });
    }

    #[test]
    fn split_shared_groups_by_node() {
        let out = Universe::run(Topology::new(3, 4), |p| {
            let node_comm = p.world().split_shared().unwrap();
            (node_comm.rank(), node_comm.size(), node_comm.node_scope())
        });
        for (world_rank, (local_rank, size, scope)) in out.iter().enumerate() {
            assert_eq!(*size, 4);
            assert_eq!(*local_rank, world_rank as u32 % 4);
            assert_eq!(*scope, Some(world_rank as u32 / 4));
        }
    }

    #[test]
    fn split_by_parity() {
        let out = Universe::run(Topology::new(1, 6), |p| {
            let world = p.world();
            let sub = world.split(world.rank() % 2, world.rank()).unwrap();
            (sub.rank(), sub.size())
        });
        assert_eq!(out, vec![(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]);
    }

    #[test]
    fn world_is_not_node_scoped_when_multi_node() {
        let out = Universe::run(Topology::new(2, 2), |p| p.world().node_scope());
        assert!(out.iter().all(|s| s.is_none()));
    }

    #[test]
    fn send_to_bad_rank_errors() {
        Universe::run(Topology::new(1, 1), |p| {
            assert!(p.world().send(9, 0, 1u8).is_err());
        });
    }
}
