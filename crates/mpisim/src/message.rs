//! Typed message envelopes and per-rank mailboxes.
//!
//! Each rank of a communicator owns one [`Mailbox`]. `send` pushes an
//! envelope into the destination's mailbox; `recv` scans the mailbox
//! front-to-back for the first envelope matching `(source, tag)` and
//! blocks on a condition variable otherwise. Scanning in arrival order
//! gives MPI's non-overtaking guarantee for messages with the same
//! source and tag.

use crate::error::{Error, Result};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;

/// Matches any source rank (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<u32> = None;
/// Matches any tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: Option<i32> = None;

/// First tag value reserved for internal collective traffic. User tags
/// must stay below this value.
pub const INTERNAL_TAG_BASE: i32 = i32::MAX - 64;

pub(crate) struct Envelope {
    pub src: u32,
    pub tag: i32,
    pub payload: Box<dyn Any + Send>,
}

/// A rank's incoming-message queue.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    /// New empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&self, env: Envelope) {
        self.queue.lock().push_back(env);
        self.cv.notify_all();
    }

    /// Blocking matched receive. Returns `(src, tag, payload)` of the
    /// first queued envelope whose source and tag match; the payload is
    /// downcast to `T`.
    pub(crate) fn recv<T: Send + 'static>(
        &self,
        src: Option<u32>,
        tag: Option<i32>,
    ) -> Result<(u32, i32, T)> {
        let mut queue = self.queue.lock();
        loop {
            let pos = queue
                .iter()
                .position(|e| src.is_none_or(|s| s == e.src) && tag.is_none_or(|t| t == e.tag));
            if let Some(pos) = pos {
                let env = queue.remove(pos).expect("position just found");
                let (esrc, etag) = (env.src, env.tag);
                return match env.payload.downcast::<T>() {
                    Ok(b) => Ok((esrc, etag, *b)),
                    Err(_) => Err(Error::TypeMismatch { src: esrc, tag: etag }),
                };
            }
            self.cv.wait(&mut queue);
        }
    }

    /// Non-blocking probe: does a matching message exist?
    pub(crate) fn probe(&self, src: Option<u32>, tag: Option<i32>) -> bool {
        self.queue
            .lock()
            .iter()
            .any(|e| src.is_none_or(|s| s == e.src) && tag.is_none_or(|t| t == e.tag))
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(Envelope { src: 1, tag: 0, payload: Box::new(10u32) });
        mb.push(Envelope { src: 1, tag: 0, payload: Box::new(20u32) });
        let (_, _, a) = mb.recv::<u32>(Some(1), Some(0)).unwrap();
        let (_, _, b) = mb.recv::<u32>(Some(1), Some(0)).unwrap();
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn matching_skips_other_tags() {
        let mb = Mailbox::new();
        mb.push(Envelope { src: 1, tag: 7, payload: Box::new("seven") });
        mb.push(Envelope { src: 1, tag: 3, payload: Box::new("three") });
        let (_, tag, s) = mb.recv::<&str>(Some(1), Some(3)).unwrap();
        assert_eq!((tag, s), (3, "three"));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mb = Mailbox::new();
        mb.push(Envelope { src: 5, tag: 0, payload: Box::new(1i64) });
        mb.push(Envelope { src: 2, tag: 0, payload: Box::new(2i64) });
        let (src, _, v) = mb.recv::<i64>(ANY_SOURCE, Some(0)).unwrap();
        assert_eq!((src, v), (5, 1));
    }

    #[test]
    fn type_mismatch_reported() {
        let mb = Mailbox::new();
        mb.push(Envelope { src: 0, tag: 1, payload: Box::new(1u8) });
        let err = mb.recv::<String>(Some(0), Some(1)).unwrap_err();
        assert_eq!(err, Error::TypeMismatch { src: 0, tag: 1 });
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        assert!(!mb.probe(None, None));
        mb.push(Envelope { src: 0, tag: 0, payload: Box::new(()) });
        assert!(mb.probe(Some(0), ANY_TAG));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.recv::<u32>(Some(0), Some(0)).unwrap().2);
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(Envelope { src: 0, tag: 0, payload: Box::new(99u32) });
        assert_eq!(t.join().unwrap(), 99);
    }
}
