//! Launching a simulated MPI world: one thread per rank.

use crate::comm::{Comm, CommState};
use crate::topology::Topology;

/// A rank's handle to the simulated MPI environment — what `MPI_Init`
/// plus `MPI_COMM_WORLD` gives a real MPI process.
pub struct Process {
    world: Comm,
    topology: Topology,
}

impl Process {
    /// The world communicator handle for this rank.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// This rank's world rank.
    pub fn rank(&self) -> u32 {
        self.world.rank()
    }

    /// The compute node this rank lives on.
    pub fn node_id(&self) -> u32 {
        self.topology.node_of(self.world.rank())
    }

    /// This rank's index within its node.
    pub fn local_rank(&self) -> u32 {
        self.topology.local_rank_of(self.world.rank())
    }

    /// The launch topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }
}

/// Entry point of the simulated runtime.
pub struct Universe;

impl Universe {
    /// Launch `topology.world_size()` ranks, run `f` on each (in its own
    /// OS thread), and return the per-rank results in world-rank order.
    ///
    /// Panics if any rank panics (after all other ranks have been
    /// joined or have panicked too), mirroring `MPI_Abort` semantics.
    pub fn run<T, F>(topology: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Process) -> T + Send + Sync,
    {
        let size = topology.world_size();
        let failed = std::sync::Arc::new(
            (0..size).map(|_| std::sync::atomic::AtomicBool::new(false)).collect::<Vec<_>>(),
        );
        let world_state = CommState::new((0..size).collect(), topology, failed);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let state = std::sync::Arc::clone(&world_state);
                    scope.spawn(move || {
                        let process = Process { world: Comm { state, rank }, topology };
                        f(&process)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(v) => v,
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| e.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into());
                        panic!("rank {rank} panicked: {msg}");
                    }
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_get_distinct_ids() {
        let out = Universe::run(Topology::new(2, 3), |p| p.rank());
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn node_and_local_ranks() {
        let out = Universe::run(Topology::new(2, 2), |p| (p.node_id(), p.local_rank()));
        assert_eq!(out, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_propagates() {
        Universe::run(Topology::new(1, 2), |p| {
            if p.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 must not deadlock waiting for rank 1.
        });
    }

    #[test]
    fn closure_can_capture_environment() {
        let base = 100u32;
        let out = Universe::run(Topology::new(1, 3), |p| base + p.rank());
        assert_eq!(out, vec![100, 101, 102]);
    }
}
