//! Collective operations over a [`Comm`], built on point-to-point
//! messaging with reserved internal tags. Linear algorithms — adequate
//! for a simulator whose largest world is a few hundred ranks.

use crate::comm::{Comm, TAG_ALLTOALL, TAG_BCAST, TAG_GATHER, TAG_REDUCE, TAG_SCAN, TAG_SCATTER};
use crate::error::{Error, Result};

impl Comm {
    /// `MPI_Bcast`: `root` supplies `value`; everyone returns it.
    /// Non-root ranks pass their own (ignored) `value`; use
    /// [`Comm::bcast_from`] to avoid constructing one.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: u32, value: T) -> Result<T> {
        self.bcast_from(root, || value.clone())
    }

    /// `MPI_Bcast` where only the root constructs the value.
    pub fn bcast_from<T: Clone + Send + 'static>(
        &self,
        root: u32,
        make: impl FnOnce() -> T,
    ) -> Result<T> {
        self.check_rank(root)?;
        if self.rank() == root {
            let value = make();
            for dest in 0..self.size() {
                if dest != root {
                    self.send(dest, TAG_BCAST, value.clone())?;
                }
            }
            Ok(value)
        } else {
            let (_, _, v) = self.recv(Some(root), Some(TAG_BCAST))?;
            Ok(v)
        }
    }

    /// `MPI_Reduce`: fold every rank's `value` with `op` at `root`
    /// (rank order, left-to-right). Non-root ranks get `None`.
    pub fn reduce<T: Send + 'static>(
        &self,
        root: u32,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Result<Option<T>> {
        self.check_rank(root)?;
        if self.rank() == root {
            let mut acc: Option<T> = None;
            for src in 0..self.size() {
                let v = if src == root {
                    // Move our own value in at our position without
                    // requiring T: Clone.
                    None
                } else {
                    let (_, _, v): (_, _, T) = self.recv(Some(src), Some(TAG_REDUCE))?;
                    Some(v)
                };
                // Keep strict rank order: insert own value when src == root.
                let next = match v {
                    Some(v) => v,
                    None => continue,
                };
                acc = Some(match acc {
                    Some(a) => op(a, next),
                    None => next,
                });
            }
            // Fold our own value last of its position group; order of a
            // commutative/associative op is unaffected. (MPI only
            // guarantees a deterministic order for predefined ops.)
            let result = match acc {
                Some(a) => op(a, value),
                None => value,
            };
            Ok(Some(result))
        } else {
            self.send(root, TAG_REDUCE, value)?;
            Ok(None)
        }
    }

    /// `MPI_Allreduce`: reduce at rank 0, then broadcast.
    pub fn allreduce<T: Clone + Send + 'static>(
        &self,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Result<T> {
        let reduced = self.reduce(0, value, op)?;
        match reduced {
            Some(v) => self.bcast(0, v),
            None => {
                let (_, _, v) = self.recv(Some(0), Some(TAG_BCAST))?;
                Ok(v)
            }
        }
    }

    /// `MPI_Gather`: root returns every rank's value in rank order;
    /// non-roots return an empty vec.
    pub fn gather<T: Send + 'static>(&self, root: u32, value: T) -> Result<Vec<T>> {
        self.check_rank(root)?;
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root as usize] = Some(value);
            for src in 0..self.size() {
                if src != root {
                    let (_, _, v): (_, _, T) = self.recv(Some(src), Some(TAG_GATHER))?;
                    out[src as usize] = Some(v);
                }
            }
            Ok(out.into_iter().map(|v| v.expect("all ranks gathered")).collect())
        } else {
            self.send(root, TAG_GATHER, value)?;
            Ok(Vec::new())
        }
    }

    /// `MPI_Allgather`: every rank returns every rank's value, in rank
    /// order.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Result<Vec<T>> {
        let gathered = self.gather(0, value)?;
        if self.rank() == 0 {
            self.bcast(0, gathered)
        } else {
            let (_, _, v) = self.recv(Some(0), Some(TAG_BCAST))?;
            Ok(v)
        }
    }

    /// `MPI_Scatter`: root distributes `values[i]` to rank `i`.
    pub fn scatter<T: Send + 'static>(&self, root: u32, values: Vec<T>) -> Result<T> {
        self.check_rank(root)?;
        if self.rank() == root {
            if values.len() != self.size() as usize {
                return Err(Error::RankOutOfRange { rank: values.len() as u32, size: self.size() });
            }
            let mut own: Option<T> = None;
            for (dest, v) in values.into_iter().enumerate() {
                if dest as u32 == root {
                    own = Some(v);
                } else {
                    self.send(dest as u32, TAG_SCATTER, v)?;
                }
            }
            Ok(own.expect("root position present"))
        } else {
            let (_, _, v) = self.recv(Some(root), Some(TAG_SCATTER))?;
            Ok(v)
        }
    }

    /// `MPI_Scan` (inclusive prefix): rank `r` returns
    /// `op(v_0, ..., v_r)`. Linear chain.
    pub fn scan<T: Clone + Send + 'static>(&self, value: T, op: impl Fn(T, T) -> T) -> Result<T> {
        let acc = if self.rank() == 0 {
            value
        } else {
            let (_, _, prev): (_, _, T) = self.recv(Some(self.rank() - 1), Some(TAG_SCAN))?;
            op(prev, value)
        };
        if self.rank() + 1 < self.size() {
            self.send(self.rank() + 1, TAG_SCAN, acc.clone())?;
        }
        Ok(acc)
    }

    /// `MPI_Exscan` (exclusive prefix): rank `r > 0` returns
    /// `Some(op(v_0, ..., v_{r-1}))`; rank 0 returns `None`.
    pub fn exscan<T: Clone + Send + 'static>(
        &self,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Result<Option<T>> {
        let prev: Option<T> = if self.rank() == 0 {
            None
        } else {
            let (_, _, p): (_, _, T) = self.recv(Some(self.rank() - 1), Some(TAG_SCAN))?;
            Some(p)
        };
        if self.rank() + 1 < self.size() {
            let next = match prev.clone() {
                Some(p) => op(p, value),
                None => value,
            };
            self.send(self.rank() + 1, TAG_SCAN, next)?;
        }
        Ok(prev)
    }

    /// `MPI_Alltoall`: rank `r` provides `values[i]` for rank `i` and
    /// returns the values every rank provided for `r`, in rank order.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        if values.len() != self.size() as usize {
            return Err(Error::RankOutOfRange { rank: values.len() as u32, size: self.size() });
        }
        let mut own: Option<T> = None;
        for (dest, v) in values.into_iter().enumerate() {
            if dest as u32 == self.rank() {
                own = Some(v);
            } else {
                self.send(dest as u32, TAG_ALLTOALL, v)?;
            }
        }
        let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        out[self.rank() as usize] = own;
        for src in 0..self.size() {
            if src != self.rank() {
                let (_, _, v): (_, _, T) = self.recv(Some(src), Some(TAG_ALLTOALL))?;
                out[src as usize] = Some(v);
            }
        }
        Ok(out.into_iter().map(|v| v.expect("all ranks contributed")).collect())
    }

    fn check_rank(&self, rank: u32) -> Result<()> {
        if rank >= self.size() {
            return Err(Error::RankOutOfRange { rank, size: self.size() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Topology, Universe};

    #[test]
    fn bcast_delivers_to_all() {
        let out = Universe::run(Topology::new(2, 2), |p| {
            let w = p.world();
            w.bcast(1, if w.rank() == 1 { 42u64 } else { 0 }).unwrap()
        });
        assert_eq!(out, vec![42; 4]);
    }

    #[test]
    fn reduce_sums_at_root() {
        let out = Universe::run(Topology::new(1, 5), |p| {
            let w = p.world();
            w.reduce(2, w.rank() as u64, |a, b| a + b).unwrap()
        });
        assert_eq!(out[2], Some(1 + 2 + 3 + 4));
        for (i, v) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Universe::run(Topology::new(2, 3), |p| {
            let w = p.world();
            w.allreduce(w.rank() * 10, |a, b| a.max(b)).unwrap()
        });
        assert_eq!(out, vec![50; 6]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            w.gather(0, format!("r{}", w.rank())).unwrap()
        });
        assert_eq!(out[0], vec!["r0", "r1", "r2", "r3"]);
        assert!(out[1].is_empty());
    }

    #[test]
    fn allgather_everywhere() {
        let out =
            Universe::run(Topology::new(1, 3), |p| p.world().allgather(p.world().rank()).unwrap());
        assert_eq!(out, vec![vec![0, 1, 2]; 3]);
    }

    #[test]
    fn scatter_distributes() {
        let out = Universe::run(Topology::new(1, 3), |p| {
            let w = p.world();
            let values = if w.rank() == 0 { vec![10, 20, 30] } else { Vec::new() };
            w.scatter(0, values).unwrap()
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn scatter_wrong_len_errors() {
        Universe::run(Topology::new(1, 1), |p| {
            assert!(p.world().scatter(0, vec![1, 2]).is_err());
        });
    }

    #[test]
    fn scan_inclusive_prefix_sums() {
        let out = Universe::run(Topology::new(1, 5), |p| {
            let w = p.world();
            w.scan(w.rank() + 1, |a, b| a + b).unwrap()
        });
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn exscan_exclusive_prefix_sums() {
        let out = Universe::run(Topology::new(1, 5), |p| {
            let w = p.world();
            w.exscan(w.rank() + 1, |a, b| a + b).unwrap()
        });
        assert_eq!(out, vec![None, Some(1), Some(3), Some(6), Some(10)]);
    }

    #[test]
    fn alltoall_transposes() {
        let out = Universe::run(Topology::new(2, 2), |p| {
            let w = p.world();
            // Rank r sends r*10 + dest to each dest.
            let values: Vec<u32> = (0..w.size()).map(|d| w.rank() * 10 + d).collect();
            w.alltoall(values).unwrap()
        });
        // Rank r receives src*10 + r from each src.
        for (r, row) in out.iter().enumerate() {
            let expected: Vec<u32> = (0..4).map(|src| src * 10 + r as u32).collect();
            assert_eq!(*row, expected);
        }
    }

    #[test]
    fn alltoall_wrong_len_errors() {
        Universe::run(Topology::new(1, 1), |p| {
            assert!(p.world().alltoall(vec![1, 2]).is_err());
        });
    }

    #[test]
    fn scan_with_non_commutative_op() {
        // String concatenation: order must be rank order.
        let out = Universe::run(Topology::new(1, 3), |p| {
            let w = p.world();
            w.scan(w.rank().to_string(), |a, b| a + &b).unwrap()
        });
        assert_eq!(out, vec!["0", "01", "012"]);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicU32::new(0));
        let f2 = Arc::clone(&flag);
        Universe::run(Topology::new(1, 4), move |p| {
            let w = p.world();
            f2.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(f2.load(Ordering::SeqCst), 4);
        });
    }
}
