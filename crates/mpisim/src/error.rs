//! Error type for the simulated MPI runtime.

use std::fmt;

/// Errors surfaced by the simulated MPI runtime. Real MPI aborts the job
/// on most of these; we return them so tests can assert on misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A rank index was outside the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: u32,
        /// Size of the communicator.
        size: u32,
    },
    /// A received message's payload type did not match the requested type.
    TypeMismatch {
        /// Source rank of the mismatched message.
        src: u32,
        /// Tag of the mismatched message.
        tag: i32,
    },
    /// The peer side of a channel disappeared (a rank panicked).
    Disconnected,
    /// A window offset was outside the target region.
    OffsetOutOfRange {
        /// The offending offset.
        offset: usize,
        /// Length of the target region.
        len: usize,
    },
    /// `allocate_shared` was called on a communicator that spans more
    /// than one node — real MPI would fail the same way.
    NotShared,
    /// A window lock was released by a rank that does not hold it.
    NotLocked,
    /// The operation targeted a rank that has died (ULFM-style
    /// `MPI_ERR_PROC_FAILED`): the runtime reports the failure instead
    /// of letting the caller hang on a corpse.
    RankFailed {
        /// The dead rank (communicator rank of the failed target/peer).
        rank: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            Error::TypeMismatch { src, tag } => {
                write!(f, "message from rank {src} tag {tag} has unexpected payload type")
            }
            Error::Disconnected => write!(f, "peer rank disconnected"),
            Error::OffsetOutOfRange { offset, len } => {
                write!(f, "window offset {offset} out of range (target region len {len})")
            }
            Error::NotShared => {
                write!(f, "allocate_shared requires a single-node communicator")
            }
            Error::NotLocked => write!(f, "window unlock without a matching lock"),
            Error::RankFailed { rank } => write!(f, "rank {rank} has failed (proc failed)"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, Error>;
