//! RMA windows: passive-target one-sided operations and MPI-3
//! shared-memory windows.
//!
//! A window is a buffer of `i64` elements contributed per rank (the only
//! element type the hierarchical DLS queues need — scheduling step and
//! scheduled-iteration counters). All accesses are sequentially
//! consistent atomics, which is *stronger* than MPI's separate memory
//! model but matches the `MPI_Win_lock`/`MPI_Fetch_and_op` usage the
//! paper relies on.

use crate::comm::{Comm, TAG_WIN};
use crate::error::{Error, Result};
use crate::rmalog::{AtomicOpKind, RmaEvent, RmaLog};
use crate::sync::QueuedLock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide window id source, so every allocation (across all
/// universes a test binary runs) gets a distinct id in RMA logs.
static NEXT_WIN_ID: AtomicU64 = AtomicU64::new(0);

/// `MPI_Win_lock` lock type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `MPI_LOCK_EXCLUSIVE`.
    Exclusive,
    /// `MPI_LOCK_SHARED`.
    Shared,
}

/// Predefined op for `MPI_Fetch_and_op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmaOp {
    /// `MPI_SUM` — fetch-and-add.
    Sum,
    /// `MPI_REPLACE` — atomic swap.
    Replace,
    /// `MPI_MIN`.
    Min,
    /// `MPI_MAX`.
    Max,
    /// `MPI_NO_OP` — atomic read.
    NoOp,
}

struct WinState {
    /// Process-unique id, stamped into RMA log records.
    id: u64,
    data: Vec<AtomicI64>,
    /// `(offset, len)` of each rank's region within `data`.
    regions: Vec<(usize, usize)>,
    /// One passive-target lock per rank region.
    locks: Vec<QueuedLock>,
    /// Comm rank of each region lock's current *exclusive* holder, or
    /// -1. Recovery code uses this to decide whether a stuck lock is
    /// held by a dead rank before revoking it.
    holders: Vec<AtomicI64>,
    shared: bool,
}

/// Snapshot of one rank's window activity counters — the per-rank view
/// of the contention the paper attributes `X+SS` slowdowns to. Taken
/// with [`Window::rank_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankWinStats {
    /// Successful `MPI_Win_lock` epochs this rank opened (shared and
    /// exclusive, including `try_lock` successes and `lock_all`).
    pub lock_acquisitions: u64,
    /// Failed poll attempts: wake-ups (or `try_lock` failures) while the
    /// requested lock was still unavailable — this rank's share of the
    /// lock-attempt message traffic.
    pub failed_polls: u64,
    /// Nanoseconds this rank spent blocked *acquiring* window locks.
    pub lock_wait_ns: u64,
    /// Nanoseconds this rank spent *inside* lock epochs (lock→unlock).
    pub lock_held_ns: u64,
    /// RMA atomic operations issued (`MPI_Fetch_and_op`,
    /// `MPI_Compare_and_swap`, `MPI_Accumulate`).
    pub rma_atomic_ops: u64,
    /// `MPI_Put` operations issued (a multi-element put counts once).
    pub puts: u64,
    /// `MPI_Get` operations issued (a multi-element get counts once).
    pub gets: u64,
    /// Recovery actions this rank performed: expired leases it
    /// reclaimed plus dead-holder locks it repaired
    /// ([`Window::note_reclaim`] / [`Window::repair_lock`]).
    pub reclaims: u64,
}

/// This rank's cumulative counters plus the open-epoch bookkeeping the
/// held-time measurement needs. One per rank per window (shared by
/// clones of the same handle, which stay on the creating rank).
#[derive(Default)]
struct RankLocal {
    lock_acquisitions: AtomicU64,
    failed_polls: AtomicU64,
    lock_wait_ns: AtomicU64,
    lock_held_ns: AtomicU64,
    rma_atomic_ops: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
    reclaims: AtomicU64,
    /// Grant instant of each epoch this rank currently holds, by target.
    held_since: Mutex<HashMap<u32, Instant>>,
}

impl RankLocal {
    fn granted(&self, target: u32, requested: Instant, polls: u64) {
        let granted = Instant::now();
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        self.failed_polls.fetch_add(polls, Ordering::Relaxed);
        self.lock_wait_ns
            .fetch_add(granted.duration_since(requested).as_nanos() as u64, Ordering::Relaxed);
        self.held_since.lock().insert(target, granted);
    }

    fn released(&self, target: u32) {
        if let Some(granted) = self.held_since.lock().remove(&target) {
            self.lock_held_ns.fetch_add(granted.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> RankWinStats {
        RankWinStats {
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            failed_polls: self.failed_polls.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
            lock_held_ns: self.lock_held_ns.load(Ordering::Relaxed),
            rma_atomic_ops: self.rma_atomic_ops.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
        }
    }
}

/// A window handle held by one rank. Cloning is cheap.
///
/// ```
/// use mpisim::{RmaOp, Topology, Universe, Window};
///
/// let totals = Universe::run(Topology::single_node(4), |p| {
///     let w = p.world();
///     let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
///     win.fetch_and_op(0, 0, 1, RmaOp::Sum).unwrap(); // everyone increments
///     w.barrier();
///     win.get(0, 0).unwrap()
/// });
/// assert_eq!(totals, vec![4; 4]);
/// ```
#[derive(Clone)]
pub struct Window {
    state: Arc<WinState>,
    comm: Comm,
    rank: Arc<RankLocal>,
    /// Recording mode: when set, every passive-target operation appends
    /// an [`RmaEvent`] for this rank to the log. Clones of a recording
    /// handle keep recording to the same log.
    log: Option<RmaLog>,
}

impl Window {
    /// `MPI_Win_create`-style collective allocation: every rank
    /// contributes `local_len` elements (may differ per rank), zeroed.
    pub fn allocate(comm: &Comm, local_len: usize) -> Result<Window> {
        Self::build(comm, local_len, false)
    }

    /// `MPI_Win_allocate_shared`: like [`Window::allocate`] but requires
    /// the communicator to be confined to one compute node.
    pub fn allocate_shared(comm: &Comm, local_len: usize) -> Result<Window> {
        if comm.node_scope().is_none() {
            return Err(Error::NotShared);
        }
        Self::build(comm, local_len, true)
    }

    fn build(comm: &Comm, local_len: usize, shared: bool) -> Result<Window> {
        let lens: Vec<usize> = comm.allgather(local_len)?;
        let state = if comm.rank() == 0 {
            let mut regions = Vec::with_capacity(lens.len());
            let mut offset = 0usize;
            for &len in &lens {
                regions.push((offset, len));
                offset += len;
            }
            let state = Arc::new(WinState {
                id: NEXT_WIN_ID.fetch_add(1, Ordering::Relaxed),
                data: (0..offset).map(|_| AtomicI64::new(0)).collect(),
                locks: (0..lens.len()).map(|_| QueuedLock::new()).collect(),
                holders: (0..lens.len()).map(|_| AtomicI64::new(-1)).collect(),
                regions,
                shared,
            });
            for dest in 1..comm.size() {
                comm.send(dest, TAG_WIN, Arc::clone(&state))?;
            }
            state
        } else {
            let (_, _, state): (_, _, Arc<WinState>) = comm.recv(Some(0), Some(TAG_WIN))?;
            state
        };
        Ok(Window { state, comm: comm.clone(), rank: Arc::new(RankLocal::default()), log: None })
    }

    /// The communicator the window was created over.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Process-unique id of this window allocation, as stamped into
    /// [`RmaRecord`](crate::RmaRecord)s.
    pub fn win_id(&self) -> u64 {
        self.state.id
    }

    /// Enter recording mode: append every subsequent passive-target
    /// operation of *this rank's handle* (and its clones) to `log`.
    /// Emits one [`RmaEvent::Attach`] declaring the window's shape.
    /// Every rank that should appear in the log must call this on its
    /// own handle, normally right after allocation.
    pub fn record_to(&mut self, log: &RmaLog) {
        self.log = Some(log.clone());
        self.rec(RmaEvent::Attach { shared: self.state.shared, comm_size: self.comm.size() });
    }

    /// Report an application-level barrier over the window's
    /// communicator to the RMA log (no-op when not recording). The
    /// checker treats it as a collective synchronization point; call it
    /// right after `comm().barrier()`.
    pub fn note_barrier(&self) {
        self.rec(RmaEvent::Barrier);
    }

    #[inline]
    fn rec(&self, event: RmaEvent) {
        if let Some(log) = &self.log {
            log.push(self.state.id, self.comm.rank(), event);
        }
    }

    /// True for windows created with [`Window::allocate_shared`].
    pub fn is_shared(&self) -> bool {
        self.state.shared
    }

    /// Length of `target`'s region.
    pub fn len_of(&self, target: u32) -> Result<usize> {
        self.region(target).map(|(_, len)| len)
    }

    fn region(&self, target: u32) -> Result<(usize, usize)> {
        self.state
            .regions
            .get(target as usize)
            .copied()
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })
    }

    fn slot(&self, target: u32, disp: usize) -> Result<&AtomicI64> {
        let (offset, len) = self.region(target)?;
        if disp >= len {
            return Err(Error::OffsetOutOfRange { offset: disp, len });
        }
        Ok(&self.state.data[offset + disp])
    }

    /// ULFM-style failure guard: on a non-shared window, an operation
    /// targeting a dead rank's region reports [`Error::RankFailed`]
    /// instead of proceeding (real one-sided traffic to a failed
    /// process would error or hang). Shared windows stay fully
    /// accessible — the OS keeps the segment mapped while any node peer
    /// lives, which is exactly what makes node-local lease recovery
    /// possible.
    fn check_alive(&self, target: u32) -> Result<()> {
        if !self.state.shared && self.comm.is_failed(target) {
            return Err(Error::RankFailed { rank: target });
        }
        Ok(())
    }

    /// `MPI_Win_lock(kind, target)`: begin a passive-target access epoch
    /// on `target`'s region. Blocks until granted.
    pub fn lock(&self, kind: LockKind, target: u32) -> Result<()> {
        self.check_alive(target)?;
        let lock = self
            .state
            .locks
            .get(target as usize)
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })?;
        let requested = Instant::now();
        let polls = match kind {
            LockKind::Exclusive => lock.lock_exclusive(),
            LockKind::Shared => lock.lock_shared(),
        };
        if kind == LockKind::Exclusive {
            self.state.holders[target as usize]
                .store(i64::from(self.comm.rank()), Ordering::SeqCst);
        }
        self.rank.granted(target, requested, polls);
        // Stamped after the grant: a correctly-disciplined exclusive
        // epoch's [Lock.seq, Unlock.seq] interval cannot overlap another
        // rank's on the same target.
        self.rec(RmaEvent::Lock { kind, target });
        Ok(())
    }

    /// Nonblocking exclusive lock attempt (an extension real MPI lacks;
    /// useful for tests and backoff schemes). Returns `true` when the
    /// lock was acquired — the caller must then
    /// `unlock(LockKind::Exclusive, target)`.
    pub fn try_lock_exclusive(&self, target: u32) -> Result<bool> {
        self.check_alive(target)?;
        let lock = self
            .state
            .locks
            .get(target as usize)
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })?;
        let requested = Instant::now();
        if lock.try_lock_exclusive() {
            self.state.holders[target as usize]
                .store(i64::from(self.comm.rank()), Ordering::SeqCst);
            self.rank.granted(target, requested, 0);
            self.rec(RmaEvent::Lock { kind: LockKind::Exclusive, target });
            Ok(true)
        } else {
            self.rank.failed_polls.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
    }

    /// `MPI_Win_unlock(target)`: end the epoch begun by [`Window::lock`].
    pub fn unlock(&self, kind: LockKind, target: u32) -> Result<()> {
        let lock = self
            .state
            .locks
            .get(target as usize)
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })?;
        // Stamped before the release (even if the release turns out to
        // be mismatched — the checker wants to see the attempt).
        self.rec(RmaEvent::Unlock { kind, target });
        if kind == LockKind::Exclusive {
            // Cleared before the release so an observer never sees a
            // stale holder on an already-free lock.
            self.state.holders[target as usize].store(-1, Ordering::SeqCst);
        }
        let ok = match kind {
            LockKind::Exclusive => lock.unlock_exclusive(),
            LockKind::Shared => lock.unlock_shared(),
        };
        if ok {
            self.rank.released(target);
            fence(Ordering::SeqCst);
            Ok(())
        } else {
            Err(Error::NotLocked)
        }
    }

    /// `MPI_Fetch_and_op`: atomically apply `op` with `operand` to the
    /// element at (`target`, `disp`) and return the previous value.
    pub fn fetch_and_op(&self, target: u32, disp: usize, operand: i64, op: RmaOp) -> Result<i64> {
        self.check_alive(target)?;
        let slot = self.slot(target, disp)?;
        self.rank.rma_atomic_ops.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Atomic { target, disp, op: AtomicOpKind::FetchAndOp });
        let prev = match op {
            RmaOp::Sum => slot.fetch_add(operand, Ordering::SeqCst),
            RmaOp::Replace => slot.swap(operand, Ordering::SeqCst),
            RmaOp::Min => slot.fetch_min(operand, Ordering::SeqCst),
            RmaOp::Max => slot.fetch_max(operand, Ordering::SeqCst),
            RmaOp::NoOp => slot.load(Ordering::SeqCst),
        };
        Ok(prev)
    }

    /// `MPI_Compare_and_swap`: if the element equals `expected`, replace
    /// it with `new`; returns the previous value either way.
    pub fn compare_and_swap(
        &self,
        target: u32,
        disp: usize,
        expected: i64,
        new: i64,
    ) -> Result<i64> {
        self.check_alive(target)?;
        let slot = self.slot(target, disp)?;
        self.rank.rma_atomic_ops.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Atomic { target, disp, op: AtomicOpKind::CompareAndSwap });
        Ok(match slot.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(prev) => prev,
            Err(prev) => prev,
        })
    }

    /// `MPI_Get` of one element.
    pub fn get(&self, target: u32, disp: usize) -> Result<i64> {
        self.check_alive(target)?;
        let slot = self.slot(target, disp)?;
        self.rank.gets.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Get { target, disp, len: 1 });
        Ok(slot.load(Ordering::SeqCst))
    }

    /// `MPI_Put` of one element.
    pub fn put(&self, target: u32, disp: usize, value: i64) -> Result<()> {
        self.check_alive(target)?;
        let slot = self.slot(target, disp)?;
        self.rank.puts.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Put { target, disp, len: 1 });
        slot.store(value, Ordering::SeqCst);
        Ok(())
    }

    /// `MPI_Get` of a whole region.
    pub fn get_all(&self, target: u32) -> Result<Vec<i64>> {
        self.check_alive(target)?;
        let (offset, len) = self.region(target)?;
        self.rank.gets.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Get { target, disp: 0, len });
        Ok(self.state.data[offset..offset + len].iter().map(|a| a.load(Ordering::SeqCst)).collect())
    }

    /// `MPI_Accumulate` with a predefined op on a single element — like
    /// [`Window::fetch_and_op`] but without returning the old value.
    pub fn accumulate(&self, target: u32, disp: usize, operand: i64, op: RmaOp) -> Result<()> {
        self.fetch_and_op(target, disp, operand, op).map(|_| ())
    }

    /// `MPI_Get` of `len` consecutive elements starting at `disp`.
    pub fn get_range(&self, target: u32, disp: usize, len: usize) -> Result<Vec<i64>> {
        self.check_alive(target)?;
        let (offset, region_len) = self.region(target)?;
        if disp + len > region_len {
            return Err(Error::OffsetOutOfRange { offset: disp + len, len: region_len });
        }
        self.rank.gets.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Get { target, disp, len });
        Ok(self.state.data[offset + disp..offset + disp + len]
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .collect())
    }

    /// `MPI_Put` of consecutive elements starting at `disp`.
    pub fn put_range(&self, target: u32, disp: usize, values: &[i64]) -> Result<()> {
        self.check_alive(target)?;
        let (offset, region_len) = self.region(target)?;
        if disp + values.len() > region_len {
            return Err(Error::OffsetOutOfRange { offset: disp + values.len(), len: region_len });
        }
        self.rank.puts.fetch_add(1, Ordering::Relaxed);
        self.rec(RmaEvent::Put { target, disp, len: values.len() });
        for (i, &v) in values.iter().enumerate() {
            self.state.data[offset + disp + i].store(v, Ordering::SeqCst);
        }
        Ok(())
    }

    /// `MPI_Win_lock_all`: shared-lock every rank's region (ascending
    /// rank order, so concurrent `lock_all` calls cannot deadlock).
    pub fn lock_all(&self) {
        for (target, lock) in self.state.locks.iter().enumerate() {
            let requested = Instant::now();
            let polls = lock.lock_shared();
            self.rank.granted(target as u32, requested, polls);
        }
        self.rec(RmaEvent::LockAll);
    }

    /// `MPI_Win_unlock_all`: release the epoch begun by
    /// [`Window::lock_all`].
    pub fn unlock_all(&self) -> Result<()> {
        self.rec(RmaEvent::UnlockAll);
        for (target, lock) in self.state.locks.iter().enumerate() {
            if !lock.unlock_shared() {
                return Err(Error::NotLocked);
            }
            self.rank.released(target as u32);
        }
        fence(Ordering::SeqCst);
        Ok(())
    }

    /// `MPI_Win_flush`: complete outstanding operations at `target`.
    /// All operations in this runtime complete eagerly, so this is a
    /// memory fence — but flushing towards a dead rank on a non-shared
    /// window reports [`Error::RankFailed`], as completing operations
    /// at a failed process is impossible.
    pub fn flush(&self, target: u32) -> Result<()> {
        self.check_alive(target)?;
        fence(Ordering::SeqCst);
        self.rec(RmaEvent::Flush { target });
        Ok(())
    }

    /// `MPI_Win_sync`: memory barrier for the unified window model.
    pub fn sync(&self) {
        fence(Ordering::SeqCst);
        self.rec(RmaEvent::Sync);
    }

    /// Contention statistics of `target`'s lock:
    /// `(acquisitions, contended, polls)`.
    pub fn lock_stats(&self, target: u32) -> Result<(u64, u64, u64)> {
        let lock = self
            .state
            .locks
            .get(target as usize)
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })?;
        Ok(lock.stats().snapshot())
    }

    /// This rank's cumulative window activity: lock acquisitions, failed
    /// poll attempts, time blocked acquiring and time spent inside lock
    /// epochs, one-sided operation counts, and recovery actions.
    /// Counters are per handle lineage — clones of this handle share
    /// them, other ranks' handles do not.
    pub fn rank_stats(&self) -> RankWinStats {
        self.rank.snapshot()
    }

    /// Comm rank currently holding `target`'s lock exclusively, if any.
    pub fn exclusive_holder(&self, target: u32) -> Result<Option<u32>> {
        self.region(target)?;
        let h = self.state.holders[target as usize].load(Ordering::SeqCst);
        Ok(u32::try_from(h).ok())
    }

    /// Count one lease reclamation performed by this rank into
    /// [`Window::rank_stats`].
    pub fn note_reclaim(&self) {
        self.rank.reclaims.fetch_add(1, Ordering::Relaxed);
    }

    /// Lock repair: revoke an exclusive hold left on `target`'s lock by
    /// a *dead* rank. Refuses to touch a live holder's epoch. Returns
    /// `true` when this call performed the revocation; concurrent
    /// repair attempts race on the holder slot and exactly one wins.
    /// The FIFO ticket queue is preserved, so surviving waiters are
    /// admitted in arrival order afterwards.
    pub fn repair_lock(&self, target: u32) -> Result<bool> {
        let lock = self
            .state
            .locks
            .get(target as usize)
            .ok_or(Error::RankOutOfRange { rank: target, size: self.comm.size() })?;
        let holder = self.state.holders[target as usize].load(Ordering::SeqCst);
        let Ok(holder_rank) = u32::try_from(holder) else {
            return Ok(false); // not exclusively held
        };
        if !self.comm.is_failed(holder_rank) {
            return Ok(false); // holder alive: not ours to revoke
        }
        // CAS elects a single repairer; the loser backs off.
        if self.state.holders[target as usize]
            .compare_exchange(holder, -1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Ok(false);
        }
        let revoked = lock.revoke_exclusive();
        if revoked {
            self.rank.reclaims.fetch_add(1, Ordering::Relaxed);
            // The repairer closes the corpse's epoch in the log so the
            // revocation is attributed on the timeline.
            self.rec(RmaEvent::Unlock { kind: LockKind::Exclusive, target });
        }
        Ok(revoked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Topology, Universe};

    #[test]
    fn fetch_and_add_is_atomic_across_ranks() {
        let out = Universe::run(Topology::new(2, 4), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            // Every rank increments rank 0's counter 100 times.
            let mut last = 0;
            for _ in 0..100 {
                last = win.fetch_and_op(0, 0, 1, RmaOp::Sum).unwrap();
            }
            w.barrier();
            let total = win.get(0, 0).unwrap();
            assert_eq!(total, 800);
            last
        });
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn compare_and_swap_unique_winner() {
        let out = Universe::run(Topology::new(1, 8), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            let prev = win.compare_and_swap(0, 0, 0, i64::from(w.rank()) + 1).unwrap();
            w.barrier();
            prev == 0
        });
        assert_eq!(out.iter().filter(|&&won| won).count(), 1);
    }

    #[test]
    fn shared_window_requires_single_node_comm() {
        Universe::run(Topology::new(2, 2), |p| {
            let w = p.world();
            assert!(matches!(Window::allocate_shared(w, 1), Err(Error::NotShared)));
            let node = w.split_shared().unwrap();
            let win = Window::allocate_shared(&node, 2).unwrap();
            assert!(win.is_shared());
        });
    }

    #[test]
    fn shared_window_visible_to_node_peers() {
        Universe::run(Topology::new(2, 2), |p| {
            let node = p.world().split_shared().unwrap();
            let win = Window::allocate_shared(&node, 1).unwrap();
            if node.rank() == 0 {
                win.put(0, 0, 1000 + i64::from(p.node_id())).unwrap();
            }
            node.barrier();
            let v = win.get(0, 0).unwrap();
            assert_eq!(v, 1000 + i64::from(p.node_id()));
        });
    }

    #[test]
    fn exclusive_lock_serialises_read_modify_write() {
        let out = Universe::run(Topology::new(1, 8), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            for _ in 0..50 {
                win.lock(LockKind::Exclusive, 0).unwrap();
                // Unprotected get+put would race; the lock must make it safe.
                let v = win.get(0, 0).unwrap();
                win.put(0, 0, v + 1).unwrap();
                win.unlock(LockKind::Exclusive, 0).unwrap();
            }
            w.barrier();
            win.get(0, 0).unwrap()
        });
        assert_eq!(out[0], 400);
    }

    #[test]
    fn unlock_without_lock_is_error() {
        Universe::run(Topology::new(1, 1), |p| {
            let win = Window::allocate(p.world(), 1).unwrap();
            assert_eq!(win.unlock(LockKind::Exclusive, 0).unwrap_err(), Error::NotLocked);
        });
    }

    #[test]
    fn offset_out_of_range() {
        Universe::run(Topology::new(1, 1), |p| {
            let win = Window::allocate(p.world(), 2).unwrap();
            assert!(matches!(win.get(0, 2), Err(Error::OffsetOutOfRange { offset: 2, len: 2 })));
        });
    }

    #[test]
    fn regions_are_per_rank() {
        Universe::run(Topology::new(1, 3), |p| {
            let w = p.world();
            let win = Window::allocate(w, 1).unwrap();
            win.put(w.rank(), 0, i64::from(w.rank()) * 7).unwrap();
            w.barrier();
            for r in 0..3 {
                assert_eq!(win.get(r, 0).unwrap(), i64::from(r) * 7);
            }
        });
    }

    #[test]
    fn min_max_noop_ops() {
        Universe::run(Topology::new(1, 1), |p| {
            let win = Window::allocate(p.world(), 1).unwrap();
            win.put(0, 0, 10).unwrap();
            assert_eq!(win.fetch_and_op(0, 0, 3, RmaOp::Min).unwrap(), 10);
            assert_eq!(win.get(0, 0).unwrap(), 3);
            assert_eq!(win.fetch_and_op(0, 0, 50, RmaOp::Max).unwrap(), 3);
            assert_eq!(win.get(0, 0).unwrap(), 50);
            assert_eq!(win.fetch_and_op(0, 0, 123, RmaOp::NoOp).unwrap(), 50);
            assert_eq!(win.get(0, 0).unwrap(), 50);
            assert_eq!(win.fetch_and_op(0, 0, -7, RmaOp::Replace).unwrap(), 50);
            assert_eq!(win.get(0, 0).unwrap(), -7);
        });
    }

    #[test]
    fn lock_stats_counted() {
        Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            for _ in 0..25 {
                win.lock(LockKind::Exclusive, 0).unwrap();
                win.unlock(LockKind::Exclusive, 0).unwrap();
            }
            w.barrier();
            let (acq, _, _) = win.lock_stats(0).unwrap();
            assert_eq!(acq, 100);
        });
    }

    #[test]
    fn range_put_get_roundtrip() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let win = Window::allocate(w, 5).unwrap();
            if w.rank() == 0 {
                win.put_range(1, 1, &[10, 20, 30]).unwrap();
            }
            w.barrier();
            assert_eq!(win.get_range(1, 1, 3).unwrap(), vec![10, 20, 30]);
            assert_eq!(win.get(1, 0).unwrap(), 0);
            assert_eq!(win.get(1, 4).unwrap(), 0);
        });
    }

    #[test]
    fn range_bounds_checked() {
        Universe::run(Topology::new(1, 1), |p| {
            let win = Window::allocate(p.world(), 3).unwrap();
            assert!(win.get_range(0, 2, 2).is_err());
            assert!(win.put_range(0, 0, &[1, 2, 3, 4]).is_err());
            assert!(win.get_range(0, 0, 3).is_ok());
        });
    }

    #[test]
    fn accumulate_applies_op() {
        Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            win.accumulate(0, 0, 5, RmaOp::Sum).unwrap();
            w.barrier();
            assert_eq!(win.get(0, 0).unwrap(), 20);
        });
    }

    #[test]
    fn lock_all_excludes_exclusive() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let win = Window::allocate(w, 1).unwrap();
            if w.rank() == 0 {
                win.lock_all();
                w.send(1, 0, ()).unwrap();
                let (_, _, ()) = w.recv(Some(1), Some(1)).unwrap();
                win.unlock_all().unwrap();
            } else {
                let (_, _, ()) = w.recv(Some(0), Some(0)).unwrap();
                // While rank 0 holds the shared lock_all, an exclusive
                // try-lock cannot succeed (QueuedLock semantics).
                assert!(!win.try_lock_exclusive(0).unwrap());
                w.send(0, 1, ()).unwrap();
            }
        });
    }

    #[test]
    fn unlock_all_without_lock_errors() {
        Universe::run(Topology::new(1, 1), |p| {
            let win = Window::allocate(p.world(), 1).unwrap();
            assert!(win.unlock_all().is_err());
        });
    }

    #[test]
    fn rank_stats_count_this_ranks_activity() {
        let snaps = Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            for _ in 0..10 {
                win.lock(LockKind::Exclusive, 0).unwrap();
                let v = win.get(0, 0).unwrap();
                win.put(0, 0, v + 1).unwrap();
                win.unlock(LockKind::Exclusive, 0).unwrap();
            }
            win.fetch_and_op(0, 0, 1, RmaOp::Sum).unwrap();
            w.barrier();
            win.rank_stats()
        });
        for s in &snaps {
            // Counters are per rank, not per window: every rank did
            // exactly 10 epochs, 10 gets/puts and 1 atomic op.
            assert_eq!(s.lock_acquisitions, 10);
            assert_eq!(s.gets, 10);
            assert_eq!(s.puts, 10);
            assert_eq!(s.rma_atomic_ops, 1);
            assert!(s.lock_held_ns > 0, "held time must accumulate");
        }
    }

    #[test]
    fn blocked_acquire_records_failed_polls_and_wait_time() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let win = Window::allocate(w, 1).unwrap();
            if w.rank() == 0 {
                win.lock(LockKind::Exclusive, 0).unwrap();
                w.send(1, 0, ()).unwrap();
                // Hold until rank 1 is provably blocked in its acquire
                // (its first failed poll shows up in the lock stats).
                while win.lock_stats(0).unwrap().2 == 0 {
                    std::thread::yield_now();
                }
                win.unlock(LockKind::Exclusive, 0).unwrap();
            } else {
                let (_, _, ()) = w.recv(Some(0), Some(0)).unwrap();
                win.lock(LockKind::Exclusive, 0).unwrap();
                win.unlock(LockKind::Exclusive, 0).unwrap();
                let s = win.rank_stats();
                assert!(s.failed_polls >= 1, "blocked acquire must poll");
                assert!(s.lock_wait_ns > 0, "blocked acquire must wait");
            }
            w.barrier();
        });
    }

    #[test]
    fn try_lock_failure_counts_as_failed_poll() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let win = Window::allocate(w, 1).unwrap();
            if w.rank() == 0 {
                win.lock(LockKind::Exclusive, 0).unwrap();
                w.send(1, 0, ()).unwrap();
                let (_, _, ()) = w.recv(Some(1), Some(1)).unwrap();
                win.unlock(LockKind::Exclusive, 0).unwrap();
            } else {
                let (_, _, ()) = w.recv(Some(0), Some(0)).unwrap();
                assert!(!win.try_lock_exclusive(0).unwrap());
                assert_eq!(win.rank_stats().failed_polls, 1);
                assert_eq!(win.rank_stats().lock_acquisitions, 0);
                w.send(0, 1, ()).unwrap();
            }
        });
    }

    #[test]
    fn recording_mode_logs_every_op_with_rank_provenance() {
        let log = RmaLog::new();
        let outer = log.clone();
        Universe::run(Topology::new(1, 2), move |p| {
            let w = p.world();
            let mut win = Window::allocate(w, 2).unwrap();
            win.record_to(&log);
            win.lock(LockKind::Exclusive, 0).unwrap();
            win.put(0, 0, i64::from(w.rank())).unwrap();
            let _ = win.get(0, 1).unwrap();
            win.unlock(LockKind::Exclusive, 0).unwrap();
            win.fetch_and_op(1, 0, 1, RmaOp::Sum).unwrap();
            w.barrier();
            win.note_barrier();
        });
        let records = outer.records();
        // Per rank: Attach, Lock, Put, Get, Unlock, Atomic, Barrier.
        assert_eq!(records.len(), 14);
        for rank in 0..2 {
            let mine: Vec<_> = records.iter().filter(|r| r.rank == rank).map(|r| r.event).collect();
            assert!(matches!(mine[0], RmaEvent::Attach { shared: false, comm_size: 2 }));
            assert!(mine.contains(&RmaEvent::Put { target: 0, disp: 0, len: 1 }));
            assert!(mine.contains(&RmaEvent::Atomic {
                target: 1,
                disp: 0,
                op: AtomicOpKind::FetchAndOp
            }));
            assert_eq!(mine.last(), Some(&RmaEvent::Barrier));
        }
        // Exclusive epochs must not interleave: between one rank's Lock
        // and Unlock seqs there is no other rank's Lock on target 0.
        let locks: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.event, RmaEvent::Lock { .. } | RmaEvent::Unlock { .. }))
            .collect();
        for pair in locks.chunks(2) {
            assert_eq!(pair[0].rank, pair[1].rank, "epochs interleaved: {locks:?}");
        }
    }

    #[test]
    fn non_recording_window_logs_nothing() {
        let log = RmaLog::new();
        let outer = log.clone();
        Universe::run(Topology::new(1, 1), move |p| {
            let win = Window::allocate(p.world(), 1).unwrap();
            win.put(0, 0, 7).unwrap();
            let _ = log.len(); // log moved in but never attached
        });
        assert!(outer.is_empty());
    }

    #[test]
    fn get_all_region() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let win = Window::allocate(w, 3).unwrap();
            if w.rank() == 1 {
                for i in 0..3 {
                    win.put(1, i, i as i64 + 1).unwrap();
                }
            }
            w.barrier();
            assert_eq!(win.get_all(1).unwrap(), vec![1, 2, 3]);
        });
    }
}
