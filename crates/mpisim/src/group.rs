//! Process groups (`MPI_Group`): local set-like handles over world
//! ranks, plus collective communicator creation from a group.

use crate::comm::Comm;
use crate::error::Result;

/// An ordered set of world ranks — the local (non-collective) group
/// object of MPI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    world_ranks: Vec<u32>,
}

impl Group {
    pub(crate) fn new(world_ranks: Vec<u32>) -> Self {
        Self { world_ranks }
    }

    /// Number of processes in the group.
    pub fn size(&self) -> u32 {
        self.world_ranks.len() as u32
    }

    /// True when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.world_ranks.is_empty()
    }

    /// Group rank of a world rank, if present.
    pub fn rank_of(&self, world_rank: u32) -> Option<u32> {
        self.world_ranks.iter().position(|&r| r == world_rank).map(|p| p as u32)
    }

    /// World rank of a group rank.
    pub fn world_rank(&self, group_rank: u32) -> Option<u32> {
        self.world_ranks.get(group_rank as usize).copied()
    }

    /// `MPI_Group_incl`: the subgroup of the given group ranks, in the
    /// given order.
    pub fn incl(&self, ranks: &[u32]) -> Option<Group> {
        let mut out = Vec::with_capacity(ranks.len());
        for &r in ranks {
            out.push(self.world_ranks.get(r as usize).copied()?);
        }
        Some(Group::new(out))
    }

    /// `MPI_Group_excl`: the group without the given group ranks.
    pub fn excl(&self, ranks: &[u32]) -> Group {
        let exclude: std::collections::HashSet<u32> = ranks.iter().copied().collect();
        Group::new(
            self.world_ranks
                .iter()
                .enumerate()
                .filter(|(i, _)| !exclude.contains(&(*i as u32)))
                .map(|(_, &r)| r)
                .collect(),
        )
    }

    /// `MPI_Group_union`: members of `self`, then members of `other`
    /// not already present.
    pub fn union(&self, other: &Group) -> Group {
        let mut out = self.world_ranks.clone();
        for &r in &other.world_ranks {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        Group::new(out)
    }

    /// `MPI_Group_intersection`: members of `self` also in `other`, in
    /// `self`'s order.
    pub fn intersection(&self, other: &Group) -> Group {
        Group::new(
            self.world_ranks.iter().copied().filter(|r| other.world_ranks.contains(r)).collect(),
        )
    }

    /// `MPI_Group_difference`: members of `self` not in `other`.
    pub fn difference(&self, other: &Group) -> Group {
        Group::new(
            self.world_ranks.iter().copied().filter(|r| !other.world_ranks.contains(r)).collect(),
        )
    }

    /// `MPI_Group_translate_ranks`: map each of `ranks` (group ranks in
    /// `self`) to the corresponding group rank in `other`, `None` where
    /// absent.
    pub fn translate_ranks(&self, ranks: &[u32], other: &Group) -> Vec<Option<u32>> {
        ranks.iter().map(|&r| self.world_rank(r).and_then(|w| other.rank_of(w))).collect()
    }
}

impl Comm {
    /// `MPI_Comm_group`: the group of this communicator.
    pub fn group(&self) -> Group {
        Group::new(self.state.world_ranks.clone())
    }

    /// `MPI_Comm_dup`: a new communicator with the same membership and
    /// fresh internal channels. Collective.
    pub fn dup(&self) -> Result<Comm> {
        self.split(0, self.rank())
    }

    /// `MPI_Comm_create`: a new communicator over `group` (which must
    /// be a subset of this communicator). Collective over *this*
    /// communicator; ranks outside the group get `None` (MPI's
    /// `MPI_COMM_NULL`).
    pub fn comm_create(&self, group: &Group) -> Result<Option<Comm>> {
        let my_world = self.state.world_ranks[self.rank() as usize];
        let member = group.rank_of(my_world);
        // Key = position in the group (preserves group order); color 1
        // for members, 0 for the rest.
        let comm = match member {
            Some(pos) => self.split(1, pos)?,
            None => {
                self.split(0, self.rank())?;
                return Ok(None);
            }
        };
        Ok(Some(comm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Topology, Universe};

    #[test]
    fn group_set_operations() {
        let a = Group::new(vec![0, 1, 2, 3]);
        let b = Group::new(vec![2, 3, 4]);
        assert_eq!(a.union(&b), Group::new(vec![0, 1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), Group::new(vec![2, 3]));
        assert_eq!(a.difference(&b), Group::new(vec![0, 1]));
        assert_eq!(a.incl(&[3, 0]), Some(Group::new(vec![3, 0])));
        assert_eq!(a.incl(&[9]), None);
        assert_eq!(a.excl(&[0, 2]), Group::new(vec![1, 3]));
    }

    #[test]
    fn translate_ranks_across_groups() {
        let a = Group::new(vec![10, 20, 30]);
        let b = Group::new(vec![30, 10]);
        assert_eq!(a.translate_ranks(&[0, 1, 2], &b), vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn comm_group_reflects_membership() {
        Universe::run(Topology::new(2, 2), |p| {
            let g = p.world().group();
            assert_eq!(g.size(), 4);
            assert_eq!(g.rank_of(p.world().rank()), Some(p.world().rank()));
        });
    }

    #[test]
    fn dup_is_independent_channel() {
        Universe::run(Topology::new(1, 2), |p| {
            let w = p.world();
            let dup = w.dup().unwrap();
            assert_eq!(dup.rank(), w.rank());
            assert_eq!(dup.size(), w.size());
            if w.rank() == 0 {
                // A message on the dup must not be visible on world.
                dup.send(1, 5, 77u8).unwrap();
            } else {
                assert!(!w.probe(Some(0), Some(5)));
                let (_, _, v): (_, _, u8) = dup.recv(Some(0), Some(5)).unwrap();
                assert_eq!(v, 77);
            }
        });
    }

    #[test]
    fn comm_create_subsets() {
        let out = Universe::run(Topology::new(1, 4), |p| {
            let w = p.world();
            // Group of the odd ranks, reversed order.
            let group = w.group().incl(&[3, 1]).unwrap();
            let sub = w.comm_create(&group).unwrap();
            sub.map(|c| (c.rank(), c.size()))
        });
        assert_eq!(out, vec![None, Some((1, 2)), None, Some((0, 2))]);
    }
}
