//! # mpisim — a thread-backed MPI-3 subset
//!
//! The paper's implementation needs three MPI capabilities that have no
//! mature Rust binding (rsmpi lacks MPI-3 shared-memory window support):
//!
//! 1. **communicator management** — `MPI_Comm_split_type(..., SHARED)`
//!    to group the ranks of one compute node;
//! 2. **passive-target RMA** — `MPI_Win_lock` / `MPI_Win_unlock`,
//!    `MPI_Fetch_and_op`, `MPI_Compare_and_swap` on a window exposed by
//!    one rank (the *global work queue*);
//! 3. **MPI-3 shared-memory windows** — `MPI_Win_allocate_shared` for a
//!    node-local window every rank of the node can address directly (the
//!    *local work queue*).
//!
//! This crate provides those capabilities over OS threads: every MPI
//! *rank* is a thread, a *compute node* is a configurable group of ranks
//! ([`Topology`]), message passing uses per-rank mailboxes, and windows
//! are shared atomic buffers guarded by a queued lock that counts
//! contention (the statistic behind the paper's `MPI_Win_lock`
//! lock-polling discussion).
//!
//! The semantics are faithful where the paper depends on them —
//! non-overtaking point-to-point ordering, atomic RMA ops, exclusive /
//! shared window locks, node-scoped shared windows — and simplified
//! elsewhere (no derived datatypes, no inter-communicators, no wildcards
//! across communicators).
//!
//! ```
//! use mpisim::{Topology, Universe};
//!
//! // 2 nodes x 2 ranks; every rank reports (world rank, node id).
//! let out = Universe::run(Topology::new(2, 2), |p| {
//!     (p.world().rank(), p.node_id())
//! });
//! assert_eq!(out, vec![(0, 0), (1, 0), (2, 1), (3, 1)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod collectives;
pub mod comm;
pub mod error;
pub mod group;
pub mod message;
pub mod request;
pub mod rmalog;
pub mod sync;
pub mod topology;
pub mod universe;
pub mod window;

pub use comm::Comm;
pub use error::{Error, Result};
pub use group::Group;
pub use request::{RecvRequest, SendRequest};
pub use rmalog::{AtomicOpKind, RmaEvent, RmaLog, RmaRecord};
pub use sync::{LockStats, QueuedLock};
pub use topology::Topology;
pub use universe::{Process, Universe};
pub use window::{LockKind, RankWinStats, RmaOp, Window};
