//! Cluster topology: how world ranks map onto simulated compute nodes.

/// A homogeneous cluster of `nodes` compute nodes with `ranks_per_node`
/// MPI processes each, mapped block-wise (ranks `0..k` on node 0, `k..2k`
/// on node 1, ...), matching the default block mapping of `mpirun`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Ranks (processes) per node.
    pub ranks_per_node: u32,
}

impl Topology {
    /// A cluster of `nodes` x `ranks_per_node`.
    pub fn new(nodes: u32, ranks_per_node: u32) -> Self {
        assert!(nodes > 0 && ranks_per_node > 0, "topology must be non-empty");
        Self { nodes, ranks_per_node }
    }

    /// A single shared-memory machine with `ranks` processes.
    pub fn single_node(ranks: u32) -> Self {
        Self::new(1, ranks)
    }

    /// Total number of ranks in the world communicator.
    pub fn world_size(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }

    /// The node a world rank lives on.
    pub fn node_of(&self, world_rank: u32) -> u32 {
        world_rank / self.ranks_per_node
    }

    /// The rank's index within its node (0-based).
    pub fn local_rank_of(&self, world_rank: u32) -> u32 {
        world_rank % self.ranks_per_node
    }

    /// World ranks belonging to `node`.
    pub fn ranks_of_node(&self, node: u32) -> std::ops::Range<u32> {
        let first = node * self.ranks_per_node;
        first..first + self.ranks_per_node
    }

    /// True when both ranks share a node (and therefore physical memory).
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(4, 4);
        assert_eq!(t.world_size(), 16);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(15), 3);
        assert_eq!(t.local_rank_of(5), 1);
        assert_eq!(t.ranks_of_node(2).collect::<Vec<_>>(), vec![8, 9, 10, 11]);
    }

    #[test]
    fn same_node_predicate() {
        let t = Topology::new(2, 3);
        assert!(t.same_node(0, 2));
        assert!(!t.same_node(2, 3));
    }

    #[test]
    fn single_node_helper() {
        let t = Topology::single_node(8);
        assert_eq!(t.nodes, 1);
        assert_eq!(t.world_size(), 8);
        assert!(t.same_node(0, 7));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_nodes_rejected() {
        Topology::new(0, 4);
    }
}
