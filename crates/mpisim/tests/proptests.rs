//! Property tests for the simulated MPI runtime: collectives must match
//! their sequential reference semantics for arbitrary world sizes,
//! values, and roots; windows must serialize arbitrary op mixes.

use mpisim::{RmaOp, Topology, Universe, Window};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_matches_reference(
        nodes in 1u32..3,
        rpn in 1u32..4,
        values in prop::collection::vec(0i64..1000, 12),
    ) {
        let topo = Topology::new(nodes, rpn);
        let n = topo.world_size() as usize;
        let values = values[..n.min(values.len())].to_vec();
        prop_assume!(values.len() == n);
        let expected: i64 = values.iter().sum();
        let vals = values.clone();
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            w.allreduce(vals[w.rank() as usize], |a, b| a + b).unwrap()
        });
        prop_assert!(out.into_iter().all(|v| v == expected));
    }

    #[test]
    fn bcast_from_any_root(nodes in 1u32..3, rpn in 1u32..4, root_seed in 0u32..100, payload in any::<u64>()) {
        let topo = Topology::new(nodes, rpn);
        let root = root_seed % topo.world_size();
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            w.bcast(root, if w.rank() == root { payload } else { 0 }).unwrap()
        });
        prop_assert!(out.into_iter().all(|v| v == payload));
    }

    #[test]
    fn gather_preserves_rank_order(nodes in 1u32..3, rpn in 1u32..4, root_seed in 0u32..100) {
        let topo = Topology::new(nodes, rpn);
        let root = root_seed % topo.world_size();
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            w.gather(root, w.rank() * 3).unwrap()
        });
        let expected: Vec<u32> = (0..topo.world_size()).map(|r| r * 3).collect();
        prop_assert_eq!(&out[root as usize], &expected);
    }

    #[test]
    fn scan_matches_prefix_fold(rpn in 1u32..7, values in prop::collection::vec(-50i64..50, 6)) {
        let topo = Topology::single_node(rpn);
        let n = topo.world_size() as usize;
        let values = values[..n.min(values.len())].to_vec();
        prop_assume!(values.len() == n);
        let vals = values.clone();
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            w.scan(vals[w.rank() as usize], |a, b| a + b).unwrap()
        });
        let mut acc = 0;
        for (r, v) in values.iter().enumerate() {
            acc += v;
            prop_assert_eq!(out[r], acc);
        }
    }

    #[test]
    fn fetch_and_op_mix_conserves_sum(rpn in 2u32..6, adds in prop::collection::vec(1i64..100, 5)) {
        let topo = Topology::single_node(rpn);
        let adds2 = adds.clone();
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
            let mut mine = 0i64;
            for &a in &adds2 {
                win.fetch_and_op(0, 0, a, RmaOp::Sum).unwrap();
                mine += a;
            }
            w.barrier();
            (mine, win.get(0, 0).unwrap())
        });
        let per_rank: i64 = adds.iter().sum();
        let expected = per_rank * i64::from(rpn);
        prop_assert!(out.iter().all(|&(mine, total)| mine == per_rank && total == expected));
    }

    #[test]
    fn split_partitions_world(nodes in 1u32..4, rpn in 1u32..4, colors in 1u32..4) {
        let topo = Topology::new(nodes, rpn);
        let out = Universe::run(topo, move |p| {
            let w = p.world();
            let sub = w.split(w.rank() % colors, w.rank()).unwrap();
            (w.rank() % colors, sub.rank(), sub.size())
        });
        // Sizes per color must sum to world size; ranks within each
        // color must be 0..size.
        let mut per_color: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for (color, rank, size) in out {
            let v = per_color.entry(color).or_default();
            v.push(rank);
            prop_assert!(rank < size);
        }
        let total: usize = per_color.values().map(Vec::len).sum();
        prop_assert_eq!(total as u32, topo.world_size());
        for ranks in per_color.values_mut() {
            ranks.sort_unstable();
            for (i, r) in ranks.iter().enumerate() {
                prop_assert_eq!(*r, i as u32);
            }
        }
    }
}
