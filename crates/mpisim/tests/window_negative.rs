//! Negative-path tests for `mpisim::Window`: misuse must surface as
//! structured `Err` values a caller can match on, never as panics —
//! that is what lets the live executors propagate window failures out
//! of worker closures, and what `rma-check`'s broken variants rely on
//! to keep running after the refused operation.

use mpisim::{Error, LockKind, Topology, Universe, Window};

fn single_rank<T: Send>(f: impl Fn(&mpisim::Process) -> T + Send + Sync) -> T {
    Universe::run(Topology::new(1, 1), f).pop().expect("one rank")
}

#[test]
fn double_unlock_is_not_locked_error() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        win.lock(LockKind::Exclusive, 0).expect("lock");
        win.unlock(LockKind::Exclusive, 0).expect("first unlock");
        assert!(matches!(win.unlock(LockKind::Exclusive, 0), Err(Error::NotLocked)));
    });
}

#[test]
fn unlock_without_lock_is_not_locked_error() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        assert!(matches!(win.unlock(LockKind::Exclusive, 0), Err(Error::NotLocked)));
        assert!(matches!(win.unlock(LockKind::Shared, 0), Err(Error::NotLocked)));
    });
}

#[test]
fn lock_out_of_range_target_is_rank_error() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        assert!(matches!(
            win.lock(LockKind::Exclusive, 5),
            Err(Error::RankOutOfRange { rank: 5, size: 1 })
        ));
        assert!(matches!(
            win.unlock(LockKind::Exclusive, 5),
            Err(Error::RankOutOfRange { rank: 5, size: 1 })
        ));
        assert!(matches!(
            win.try_lock_exclusive(9),
            Err(Error::RankOutOfRange { rank: 9, size: 1 })
        ));
    });
}

#[test]
fn get_put_past_region_is_offset_error() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        assert_eq!(win.len_of(0).expect("len"), 4);
        win.lock(LockKind::Exclusive, 0).expect("lock");
        assert!(matches!(win.get(0, 4), Err(Error::OffsetOutOfRange { offset: 4, len: 4 })));
        assert!(matches!(win.put(0, 7, 1), Err(Error::OffsetOutOfRange { offset: 7, len: 4 })));
        assert!(matches!(
            win.fetch_and_op(0, 4, 1, mpisim::RmaOp::Sum),
            Err(Error::OffsetOutOfRange { .. })
        ));
        // In-range accesses on the same epoch still work afterwards.
        win.put(0, 3, 11).expect("in-range put");
        assert_eq!(win.get(0, 3).expect("in-range get"), 11);
        win.unlock(LockKind::Exclusive, 0).expect("unlock");
    });
}

#[test]
fn range_ops_past_region_are_offset_errors() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        win.lock(LockKind::Exclusive, 0).expect("lock");
        assert!(win.get_range(0, 2, 3).is_err());
        assert!(win.put_range(0, 3, &[1, 2]).is_err());
        win.unlock(LockKind::Exclusive, 0).expect("unlock");
    });
}

#[test]
fn stats_for_out_of_range_target_are_errors() {
    single_rank(|p| {
        let win = Window::allocate(p.world(), 4).expect("allocate");
        assert!(win.len_of(3).is_err());
        assert!(win.lock_stats(3).is_err());
    });
}
