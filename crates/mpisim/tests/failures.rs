//! Failure-path tests for the simulated runtime: once a rank is
//! declared dead via `Comm::mark_failed`, every operation a peer aims
//! at it must come back as a structured `Error::RankFailed` — never a
//! hang — mirroring ULFM's `MPI_ERR_PROC_FAILED` semantics. Shared
//! (node-local) windows are the deliberate exception: the OS keeps the
//! segment mapped after the owning process dies, which is exactly what
//! makes node-local lease recovery possible, so those stay readable and
//! repairable.

use mpisim::{Error, LockKind, Topology, Universe, Window};

/// Every op targeting a dead rank on a *non-shared* window errors with
/// `RankFailed` instead of blocking: lock, try-lock, flush, atomics,
/// and plain get/put.
#[test]
fn post_crash_window_ops_return_rank_failed() {
    Universe::run(Topology::new(2, 1), |p| {
        let w = p.world();
        let win = Window::allocate(w, 2).expect("allocate");
        if w.rank() == 1 {
            w.mark_failed();
            w.barrier();
        } else {
            w.barrier();
            assert!(matches!(win.lock(LockKind::Exclusive, 1), Err(Error::RankFailed { rank: 1 })));
            assert!(matches!(win.try_lock_exclusive(1), Err(Error::RankFailed { rank: 1 })));
            assert!(matches!(win.flush(1), Err(Error::RankFailed { rank: 1 })));
            assert!(matches!(
                win.fetch_and_op(1, 0, 1, mpisim::RmaOp::Sum),
                Err(Error::RankFailed { rank: 1 })
            ));
            assert!(matches!(win.compare_and_swap(1, 0, 0, 7), Err(Error::RankFailed { rank: 1 })));
            assert!(matches!(win.get(1, 0), Err(Error::RankFailed { rank: 1 })));
            assert!(matches!(win.put(1, 0, 3), Err(Error::RankFailed { rank: 1 })));
            // The survivor's own region is untouched by the peer death.
            win.lock(LockKind::Exclusive, 0).expect("own lock");
            win.put(0, 0, 42).expect("own put");
            win.unlock(LockKind::Exclusive, 0).expect("own unlock");
        }
        w.barrier();
    });
}

/// Point-to-point: sending to a dead rank errors; a sourced receive
/// from a dead rank errors *unless* a matching message was buffered
/// before the death — pre-death messages stay deliverable.
#[test]
fn send_recv_against_dead_rank() {
    Universe::run(Topology::new(1, 2), |p| {
        let w = p.world();
        if w.rank() == 1 {
            w.send(0, 7, 99u32).expect("pre-death send");
            w.mark_failed();
            w.barrier();
        } else {
            w.barrier();
            assert!(matches!(w.send(1, 0, 1u8), Err(Error::RankFailed { rank: 1 })));
            // The message buffered before the crash is still there...
            let (_, _, v): (_, _, u32) = w.recv(Some(1), Some(7)).expect("buffered msg");
            assert_eq!(v, 99);
            // ...but once drained, a sourced recv errors instead of hanging.
            assert!(matches!(w.recv::<u32>(Some(1), Some(7)), Err(Error::RankFailed { rank: 1 })));
        }
        w.barrier();
    });
}

/// Shared windows survive peer death: the node-local segment stays
/// mapped, so a survivor can still read the dead rank's region — the
/// property the lease-reclaim protocol depends on.
#[test]
fn shared_window_readable_after_peer_death() {
    let out = Universe::run(Topology::new(1, 2), |p| {
        let w = p.world();
        let win = Window::allocate_shared(w, 1).expect("allocate_shared");
        if w.rank() == 1 {
            win.lock(LockKind::Exclusive, 1).expect("lock");
            win.put(1, 0, 123).expect("put");
            win.unlock(LockKind::Exclusive, 1).expect("unlock");
            w.mark_failed();
            w.barrier();
            0
        } else {
            w.barrier();
            win.lock(LockKind::Shared, 1).expect("shared win lock survives death");
            let v = win.get(1, 0).expect("read dead rank's region");
            win.unlock(LockKind::Shared, 1).expect("unlock");
            v
        }
    });
    assert_eq!(out[0], 123);
}

/// A dead exclusive holder is evicted by `repair_lock`: the repairer
/// sees `Ok(true)`, the lock becomes acquirable again, and the repair
/// is counted as a reclaim in the repairer's window stats.
#[test]
fn repair_lock_revokes_dead_holder() {
    Universe::run(Topology::new(1, 2), |p| {
        let w = p.world();
        let win = Window::allocate_shared(w, 2).expect("allocate_shared");
        if w.rank() == 1 {
            win.lock(LockKind::Exclusive, 0).expect("lock");
            w.mark_failed(); // dies holding target 0's exclusive lock
            w.barrier();
            w.barrier();
        } else {
            w.barrier();
            assert_eq!(win.exclusive_holder(0).expect("holder"), Some(1));
            assert!(!win.try_lock_exclusive(0).expect("held by corpse"));
            assert!(win.repair_lock(0).expect("repair"));
            // Exactly one repair happened and the lock works again.
            assert_eq!(win.exclusive_holder(0).expect("holder"), None);
            win.lock(LockKind::Exclusive, 0).expect("re-acquire after repair");
            win.unlock(LockKind::Exclusive, 0).expect("unlock");
            assert_eq!(win.rank_stats().reclaims, 1);
            // Second repair attempt is a no-op: nothing left to evict.
            assert!(!win.repair_lock(0).expect("idempotent"));
            w.barrier();
        }
    });
}

/// `repair_lock` refuses to evict a *live* holder — only death
/// justifies revocation, so a slow-but-alive critical section is safe.
#[test]
fn repair_lock_refuses_live_holder() {
    Universe::run(Topology::new(1, 2), |p| {
        let w = p.world();
        let win = Window::allocate_shared(w, 1).expect("allocate_shared");
        if w.rank() == 1 {
            win.lock(LockKind::Exclusive, 0).expect("lock");
            w.barrier(); // holder alive and inside its critical section
            w.barrier(); // peer has finished probing
            win.unlock(LockKind::Exclusive, 0).expect("unlock");
        } else {
            w.barrier();
            assert!(!win.repair_lock(0).expect("live holder must not be evicted"));
            assert_eq!(win.rank_stats().reclaims, 0);
            w.barrier();
        }
        w.barrier();
    });
}

/// The lease-settlement idiom the live executor uses: a lease's epoch
/// slot is advanced with compare-and-swap, so when two survivors race
/// to reclaim the same dead rank's lease, exactly one wins and the
/// other observes it as already settled — a double reclaim cannot
/// double-deposit the range.
#[test]
fn double_reclaim_of_same_lease_has_one_winner() {
    let wins = Universe::run(Topology::new(1, 3), |p| {
        let w = p.world();
        let win = Window::allocate_shared(w, 1).expect("allocate_shared");
        if w.rank() == 0 {
            // Publish an active lease (odd epoch), then die mid-chunk.
            win.lock(LockKind::Exclusive, 0).expect("lock");
            win.put(0, 0, 1).expect("publish lease epoch");
            win.unlock(LockKind::Exclusive, 0).expect("unlock");
            w.mark_failed();
            w.barrier();
            false
        } else {
            w.barrier();
            // Both survivors race to settle epoch 1 -> 2.
            let prev = win.compare_and_swap(0, 0, 1, 2).expect("cas");
            if prev == 1 {
                win.note_reclaim();
            }
            prev == 1
        }
    });
    assert_eq!(wins.iter().filter(|&&won| won).count(), 1, "exactly one reclaimer may win");
}
