//! On-disk record framing: `len u32 LE | crc32 u32 LE | payload`.
//!
//! Segments are append-only files that begin with an 8-byte magic
//! (`DLSWAL01`) followed by the segment sequence number (`u64` LE).
//! After the header come zero or more framed records. The CRC covers
//! the payload only; the length prefix is implicitly validated by the
//! CRC check (a torn or garbled length either runs past the end of
//! the file or yields a payload whose CRC cannot match).
//!
//! The framing guarantees the journal's one crash invariant: a
//! process killed at an arbitrary instant can tear at most the *tail*
//! of the last segment. [`scan`] walks a segment and reports exactly
//! where the clean prefix ends, so the opener can truncate back to the
//! last complete record instead of refusing to start.

/// 8-byte magic at the start of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DLSWAL01";

/// Fixed size of the segment header: magic + segment sequence number.
pub const SEGMENT_HEADER_LEN: usize = 16;

/// Per-record framing overhead: length prefix + CRC.
pub const RECORD_HEADER_LEN: usize = 8;

/// Hard cap on a single record's payload. Nothing the service
/// journals comes close; the cap exists so a torn length prefix that
/// happens to pass as "huge" is rejected instead of driving a
/// multi-gigabyte read.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// same polynomial zlib and gzip use, implemented with a small
/// compile-time table so the crate stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append one framed record to `out`.
pub fn encode_record(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Build a segment header for segment `seq`.
pub fn segment_header(seq: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Outcome of scanning one segment's bytes.
#[derive(Debug)]
pub struct ScanResult<'a> {
    /// Segment sequence number from the header.
    pub seq: u64,
    /// Complete, CRC-clean payloads in append order.
    pub records: Vec<&'a [u8]>,
    /// Byte offset of the end of the clean prefix — the truncation
    /// point when `torn` is true, the file length otherwise.
    pub clean_len: usize,
    /// True if trailing bytes after `clean_len` failed to parse
    /// (short header, short payload, CRC mismatch, or oversized
    /// length prefix).
    pub torn: bool,
}

/// Errors from [`scan`] that mean the segment is unusable as a whole,
/// as opposed to merely having a torn tail.
#[derive(Debug, PartialEq, Eq)]
pub enum ScanError {
    /// File shorter than the segment header, or wrong magic.
    BadHeader,
    /// Header names a different sequence number than the filename.
    SeqMismatch {
        /// Sequence number expected from the filename.
        expected: u64,
        /// Sequence number found in the header.
        found: u64,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::BadHeader => write!(f, "bad segment header"),
            ScanError::SeqMismatch { expected, found } => {
                write!(f, "segment header seq {found} does not match filename seq {expected}")
            }
        }
    }
}

/// Walk a segment file's bytes, returning every clean record and the
/// offset where the clean prefix ends. `expect_seq` (when `Some`)
/// cross-checks the header against the filename.
pub fn scan(bytes: &[u8], expect_seq: Option<u64>) -> Result<ScanResult<'_>, ScanError> {
    if bytes.len() < SEGMENT_HEADER_LEN || &bytes[..8] != SEGMENT_MAGIC {
        return Err(ScanError::BadHeader);
    }
    let mut seq_buf = [0u8; 8];
    seq_buf.copy_from_slice(&bytes[8..16]);
    let seq = u64::from_le_bytes(seq_buf);
    if let Some(expected) = expect_seq {
        if seq != expected {
            return Err(ScanError::SeqMismatch { expected, found: seq });
        }
    }

    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN;
    loop {
        if off == bytes.len() {
            return Ok(ScanResult { seq, records, clean_len: off, torn: false });
        }
        if bytes.len() - off < RECORD_HEADER_LEN {
            return Ok(ScanResult { seq, records, clean_len: off, torn: true });
        }
        let mut w = [0u8; 4];
        w.copy_from_slice(&bytes[off..off + 4]);
        let len = u32::from_le_bytes(w);
        w.copy_from_slice(&bytes[off + 4..off + 8]);
        let crc = u32::from_le_bytes(w);
        if len > MAX_RECORD_LEN {
            return Ok(ScanResult { seq, records, clean_len: off, torn: true });
        }
        let start = off + RECORD_HEADER_LEN;
        let Some(end) = start.checked_add(len as usize) else {
            return Ok(ScanResult { seq, records, clean_len: off, torn: true });
        };
        if end > bytes.len() {
            return Ok(ScanResult { seq, records, clean_len: off, torn: true });
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Ok(ScanResult { seq, records, clean_len: off, torn: true });
        }
        records.push(payload);
        off = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: CRC32("123456789") is the classic check value.
    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = segment_header(7).to_vec();
        encode_record(b"alpha", &mut buf);
        encode_record(b"", &mut buf);
        encode_record(&[0xFFu8; 300], &mut buf);
        let res = scan(&buf, Some(7)).unwrap();
        assert!(!res.torn);
        assert_eq!(res.clean_len, buf.len());
        assert_eq!(res.records.len(), 3);
        assert_eq!(res.records[0], b"alpha");
        assert_eq!(res.records[1], b"");
        assert_eq!(res.records[2], &[0xFFu8; 300][..]);
    }

    #[test]
    fn truncation_at_every_offset_is_torn_not_panic() {
        let mut buf = segment_header(0).to_vec();
        encode_record(b"first", &mut buf);
        let keep = buf.len();
        encode_record(b"second-record-payload", &mut buf);
        for cut in keep + 1..buf.len() {
            let res = scan(&buf[..cut], Some(0)).unwrap();
            assert!(res.torn, "cut at {cut} should be torn");
            assert_eq!(res.clean_len, keep);
            assert_eq!(res.records.len(), 1);
            assert_eq!(res.records[0], b"first");
        }
    }

    #[test]
    fn bit_flip_in_payload_is_torn() {
        let mut buf = segment_header(3).to_vec();
        encode_record(b"first", &mut buf);
        let keep = buf.len();
        encode_record(b"second", &mut buf);
        let flip = keep + RECORD_HEADER_LEN + 2;
        buf[flip] ^= 0x40;
        let res = scan(&buf, Some(3)).unwrap();
        assert!(res.torn);
        assert_eq!(res.clean_len, keep);
        assert_eq!(res.records.len(), 1);
    }

    #[test]
    fn oversized_length_prefix_is_torn() {
        let mut buf = segment_header(1).to_vec();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let res = scan(&buf, Some(1)).unwrap();
        assert!(res.torn);
        assert_eq!(res.clean_len, SEGMENT_HEADER_LEN);
        assert!(res.records.is_empty());
    }

    #[test]
    fn header_checks() {
        assert_eq!(scan(b"short", None).unwrap_err(), ScanError::BadHeader);
        let mut buf = segment_header(4).to_vec();
        buf[0] = b'x';
        assert_eq!(scan(&buf, Some(4)).unwrap_err(), ScanError::BadHeader);
        let buf = segment_header(4).to_vec();
        assert_eq!(
            scan(&buf, Some(5)).unwrap_err(),
            ScanError::SeqMismatch { expected: 5, found: 4 }
        );
    }
}
