//! Typed journal records and their little-endian wire form.
//!
//! One record per *exactly-once-relevant* state transition, and
//! nothing else: chunk boundaries are re-derived through the real
//! `dls` calculators at replay, so the journal records watermarks and
//! lease identities, never chunk contents. Grants are batched — one
//! [`JournalRecord::Granted`] per fetch burst carries every lease the
//! burst produced plus the post-burst counter watermarks, which is
//! what keeps the hot path at one buffered append per burst.

use dls::switchable::{Decision, SchedKind, SwitchReason};

/// One grant inside a [`JournalRecord::Granted`] burst.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrantEntry {
    /// Dense lease id within the job's ledger.
    pub lease: u64,
    /// Worker rank the range was granted to.
    pub worker: u32,
    /// First iteration of the range.
    pub lo: u64,
    /// One past the last iteration.
    pub hi: u64,
    /// True when the range was served from the reclaim pool rather
    /// than by advancing the fresh-chunk counters. Replay uses this to
    /// remove the matching pool entry instead of guessing by range.
    pub from_pool: bool,
}

/// A durable state transition of the scheduling service.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// The server opened the journal; `epoch` fences all leases
    /// granted by earlier incarnations.
    ServerStart {
        /// New server epoch (monotone across restarts, first is 1).
        epoch: u32,
    },
    /// A job was admitted.
    JobCreated {
        /// Job id.
        job: u64,
        /// Total iterations.
        n: u64,
        /// Scheduling technique (or the AUTO meta-mode).
        kind: SchedKind,
        /// Per-worker weights (empty for unweighted techniques).
        weights: Vec<f64>,
    },
    /// One fetch burst: post-burst counter watermarks plus every lease
    /// the burst granted.
    Granted {
        /// Job id.
        job: u64,
        /// Chunk-index counter after the burst.
        step: u64,
        /// Scheduled-iterations counter after the burst.
        scheduled: u64,
        /// Leases granted by the burst, in ledger order.
        grants: Vec<GrantEntry>,
    },
    /// Leases settled as completed by their owner.
    Settled {
        /// Job id.
        job: u64,
        /// Lease ids, each previously granted.
        leases: Vec<u64>,
    },
    /// Leases reclaimed from a dead owner; their ranges returned to
    /// the reclaim pool.
    Reclaimed {
        /// Job id.
        job: u64,
        /// Lease ids, each previously granted.
        leases: Vec<u64>,
    },
    /// Every iteration of the job settled exactly once.
    JobFinished {
        /// Job id.
        job: u64,
    },
    /// Graceful drain: the journal was flushed and fsynced before a
    /// clean exit. Purely informational at replay.
    Drained {
        /// Epoch that drained.
        epoch: u32,
    },
    /// An AUTO job's tuner switched the active technique. Journaled
    /// *before* the switch takes effect on the grant path, so replay
    /// reproduces the decision history — and therefore the active
    /// technique at every watermark — bit-identically without ever
    /// re-running the policy.
    TechniqueSwitched {
        /// Job id.
        job: u64,
        /// The switch: dense sequence number, global watermarks at the
        /// re-basing origin, from/to techniques, and the reason.
        decision: Decision,
    },
}

const T_SERVER_START: u8 = 1;
const T_JOB_CREATED: u8 = 2;
const T_GRANTED: u8 = 3;
const T_SETTLED: u8 = 4;
const T_RECLAIMED: u8 = 5;
const T_JOB_FINISHED: u8 = 6;
const T_DRAINED: u8 = 7;
const T_TECHNIQUE_SWITCHED: u8 = 8;

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.off)?;
        self.off += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.off..self.off + 4)?;
        self.off += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.off..self.off + 8)?;
        self.off += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// A count that the remaining bytes could plausibly hold, given a
    /// minimum per-element size — rejects garbage counts before any
    /// allocation.
    fn count(&mut self, min_elem: usize) -> Option<usize> {
        let c = self.u32()? as usize;
        if c > (self.bytes.len() - self.off) / min_elem.max(1) {
            return None;
        }
        Some(c)
    }

    fn done(self) -> Option<()> {
        (self.off == self.bytes.len()).then_some(())
    }
}

impl JournalRecord {
    /// Serialize to the payload that goes inside one journal frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        self.encode_into(&mut b);
        b
    }

    /// [`JournalRecord::encode`] into a caller-owned buffer — the
    /// hot-path variant: the journal appends thousands of records per
    /// second and reuses one scratch buffer instead of allocating per
    /// record.
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            JournalRecord::ServerStart { epoch } => {
                b.push(T_SERVER_START);
                b.extend_from_slice(&epoch.to_le_bytes());
            }
            JournalRecord::JobCreated { job, n, kind, weights } => {
                b.push(T_JOB_CREATED);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&n.to_le_bytes());
                b.push(kind.to_byte());
                b.extend_from_slice(&(weights.len() as u32).to_le_bytes());
                for w in weights {
                    b.extend_from_slice(&w.to_bits().to_le_bytes());
                }
            }
            JournalRecord::Granted { job, step, scheduled, grants } => {
                b.push(T_GRANTED);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&step.to_le_bytes());
                b.extend_from_slice(&scheduled.to_le_bytes());
                b.extend_from_slice(&(grants.len() as u32).to_le_bytes());
                for g in grants {
                    b.extend_from_slice(&g.lease.to_le_bytes());
                    b.extend_from_slice(&g.worker.to_le_bytes());
                    b.extend_from_slice(&g.lo.to_le_bytes());
                    b.extend_from_slice(&g.hi.to_le_bytes());
                    b.push(g.from_pool as u8);
                }
            }
            JournalRecord::Settled { job, leases } => {
                b.push(T_SETTLED);
                encode_lease_list(b, *job, leases);
            }
            JournalRecord::Reclaimed { job, leases } => {
                b.push(T_RECLAIMED);
                encode_lease_list(b, *job, leases);
            }
            JournalRecord::JobFinished { job } => {
                b.push(T_JOB_FINISHED);
                b.extend_from_slice(&job.to_le_bytes());
            }
            JournalRecord::Drained { epoch } => {
                b.push(T_DRAINED);
                b.extend_from_slice(&epoch.to_le_bytes());
            }
            JournalRecord::TechniqueSwitched { job, decision } => {
                b.push(T_TECHNIQUE_SWITCHED);
                b.extend_from_slice(&job.to_le_bytes());
                b.extend_from_slice(&decision.seq.to_le_bytes());
                b.extend_from_slice(&decision.step.to_le_bytes());
                b.extend_from_slice(&decision.scheduled.to_le_bytes());
                b.push(decision.from.to_byte());
                b.push(decision.to.to_byte());
                b.push(decision.reason.to_byte());
            }
        }
    }

    /// Inverse of [`JournalRecord::encode`]. `None` on any malformed
    /// payload (unknown tag, truncation, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader { bytes, off: 0 };
        let rec = match r.u8()? {
            T_SERVER_START => JournalRecord::ServerStart { epoch: r.u32()? },
            T_JOB_CREATED => {
                let job = r.u64()?;
                let n = r.u64()?;
                let kind = SchedKind::from_byte(r.u8()?)?;
                let count = r.count(8)?;
                let mut weights = Vec::with_capacity(count);
                for _ in 0..count {
                    weights.push(r.f64()?);
                }
                JournalRecord::JobCreated { job, n, kind, weights }
            }
            T_GRANTED => {
                let job = r.u64()?;
                let step = r.u64()?;
                let scheduled = r.u64()?;
                let count = r.count(29)?;
                let mut grants = Vec::with_capacity(count);
                for _ in 0..count {
                    grants.push(GrantEntry {
                        lease: r.u64()?,
                        worker: r.u32()?,
                        lo: r.u64()?,
                        hi: r.u64()?,
                        from_pool: r.u8()? != 0,
                    });
                }
                JournalRecord::Granted { job, step, scheduled, grants }
            }
            T_SETTLED => {
                let (job, leases) = decode_lease_list(&mut r)?;
                JournalRecord::Settled { job, leases }
            }
            T_RECLAIMED => {
                let (job, leases) = decode_lease_list(&mut r)?;
                JournalRecord::Reclaimed { job, leases }
            }
            T_JOB_FINISHED => JournalRecord::JobFinished { job: r.u64()? },
            T_DRAINED => JournalRecord::Drained { epoch: r.u32()? },
            T_TECHNIQUE_SWITCHED => {
                let job = r.u64()?;
                let decision = Decision {
                    seq: r.u32()?,
                    step: r.u64()?,
                    scheduled: r.u64()?,
                    from: SchedKind::from_byte(r.u8()?)?,
                    to: SchedKind::from_byte(r.u8()?)?,
                    reason: SwitchReason::from_byte(r.u8()?)?,
                };
                JournalRecord::TechniqueSwitched { job, decision }
            }
            _ => return None,
        };
        r.done()?;
        Some(rec)
    }
}

fn encode_lease_list(b: &mut Vec<u8>, job: u64, leases: &[u64]) {
    b.extend_from_slice(&job.to_le_bytes());
    b.extend_from_slice(&(leases.len() as u32).to_le_bytes());
    for l in leases {
        b.extend_from_slice(&l.to_le_bytes());
    }
}

fn decode_lease_list(r: &mut Reader<'_>) -> Option<(u64, Vec<u64>)> {
    let job = r.u64()?;
    let count = r.count(8)?;
    let mut leases = Vec::with_capacity(count);
    for _ in 0..count {
        leases.push(r.u64()?);
    }
    Some((job, leases))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<JournalRecord> {
        vec![
            JournalRecord::ServerStart { epoch: 3 },
            JournalRecord::JobCreated {
                job: 1,
                n: 4096,
                kind: dls::Kind::GSS.into(),
                weights: vec![],
            },
            JournalRecord::JobCreated {
                job: 2,
                n: 10,
                kind: dls::Kind::WF.into(),
                weights: vec![1.0, 0.5, 2.25],
            },
            JournalRecord::JobCreated { job: 3, n: 64, kind: SchedKind::Auto, weights: vec![] },
            JournalRecord::JobCreated { job: 4, n: 64, kind: SchedKind::Af, weights: vec![] },
            JournalRecord::TechniqueSwitched {
                job: 3,
                decision: Decision {
                    seq: 0,
                    step: 12,
                    scheduled: 777,
                    from: dls::Kind::SS.into(),
                    to: dls::Kind::GSS.into(),
                    reason: SwitchReason::Overhead,
                },
            },
            JournalRecord::Granted {
                job: 1,
                step: 7,
                scheduled: 900,
                grants: vec![
                    GrantEntry { lease: 5, worker: 2, lo: 512, hi: 700, from_pool: false },
                    GrantEntry { lease: 6, worker: 2, lo: 0, hi: 64, from_pool: true },
                ],
            },
            JournalRecord::Granted { job: 9, step: 0, scheduled: 0, grants: vec![] },
            JournalRecord::Settled { job: 1, leases: vec![5, 6, 7] },
            JournalRecord::Reclaimed { job: 1, leases: vec![0] },
            JournalRecord::JobFinished { job: 1 },
            JournalRecord::Drained { epoch: 3 },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(JournalRecord::decode(&bytes).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(JournalRecord::decode(&bytes[..cut]).is_none(), "{rec:?} cut {cut}");
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_unknown_tag() {
        let mut bytes = JournalRecord::JobFinished { job: 4 }.encode();
        bytes.push(0);
        assert!(JournalRecord::decode(&bytes).is_none());
        assert!(JournalRecord::decode(&[0xEE, 1, 2, 3]).is_none());
        assert!(JournalRecord::decode(&[]).is_none());
    }

    #[test]
    fn kind_mapping_total() {
        // The journal shares the canonical SchedKind byte map: pure
        // kinds keep their historical bytes 0–9, adaptive kinds and
        // AUTO occupy 10–15, and everything above is rejected.
        for kind in SchedKind::CONCRETE.into_iter().chain([SchedKind::Auto]) {
            assert_eq!(SchedKind::from_byte(kind.to_byte()), Some(kind));
        }
        for kind in dls::Kind::ALL {
            assert!(SchedKind::from(kind).to_byte() <= 9, "pure kinds keep v1 bytes");
        }
        assert_eq!(SchedKind::from_byte(16), None);
    }

    #[test]
    fn switch_record_rejects_bad_bytes() {
        let good = JournalRecord::TechniqueSwitched {
            job: 3,
            decision: Decision {
                seq: 1,
                step: 2,
                scheduled: 3,
                from: SchedKind::Af,
                to: dls::Kind::FAC2.into(),
                reason: SwitchReason::Imbalance,
            },
        }
        .encode();
        assert_eq!(JournalRecord::decode(&good).as_ref().map(|r| r.encode()), Some(good.clone()));
        // Corrupt each of the three trailing kind/reason bytes.
        for (idx, bad) in [(good.len() - 3, 16u8), (good.len() - 2, 255), (good.len() - 1, 4)] {
            let mut b = good.clone();
            b[idx] = bad;
            assert!(JournalRecord::decode(&b).is_none(), "byte {idx} = {bad}");
        }
    }
}
