//! # durability — write-ahead journal + snapshot/replay recovery
//!
//! The paper's global queue is two counters and a technique: chunk
//! boundaries are a *deterministic function* of `(step, scheduled)`
//! and the `dls` calculator driving them (the distributed
//! chunk-calculation insight of Eleliemy & Ciorba). That makes the
//! queue unusually cheap to persist — the journal never records chunk
//! *contents*, only counter high-watermarks and the lease ledger, and
//! replay re-derives everything else through the real calculators.
//!
//! Three layers:
//!
//! * [`frame`] — the on-disk record framing: length-prefixed,
//!   CRC32-guarded records in append-only segment files. A crash can
//!   tear at most the tail of the last segment; opening truncates back
//!   to the last complete record instead of refusing to start.
//! * [`Journal`] — group-commit segment writer. Appends are buffered
//!   in memory; one [`Journal::commit`] per event-loop cycle writes the
//!   whole burst and fsyncs according to the [`SyncPolicy`] knob, so
//!   the hot path pays one buffered append per fetch burst and one
//!   fsync per cycle, not per chunk. Periodic snapshots seal the
//!   current segment, persist the full replayed state, and garbage-
//!   collect every older segment.
//! * [`replay`] — the recovery state machine: applying a record
//!   stream (snapshot base + segment tail) to [`RecoveredState`] is
//!   deterministic and *idempotent*, so a snapshot that raced ahead of
//!   its journal position replays the overlap as a no-op. After
//!   replay, [`RecoveredState::re_arm`] turns every still-active lease
//!   into a reclaimed range — the crashed clients are gone; their
//!   unfinished chunks go back to the pool and the existing
//!   exactly-once reclaim machinery does the rest.
//!
//! The epoch rule that closes the reconnect ambiguity: every open
//! appends a [`JournalRecord::ServerStart`] with a bumped epoch and
//! fsyncs it before any grant goes out. Grants carry the epoch; a
//! report from a previous epoch is detectably stale (the service
//! answers a typed `StaleEpoch`), so a pre-crash grant can never be
//! double-counted against its post-crash re-issue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod frame;
pub mod journal;
pub mod record;
pub mod replay;

pub use journal::{Journal, JournalOptions, JournalStats, RecoverError, SyncPolicy};
pub use record::{GrantEntry, JournalRecord};
pub use replay::{JobImage, RecoveredState};
