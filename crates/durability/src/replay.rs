//! Deterministic, idempotent replay of a journal record stream.
//!
//! [`RecoveredState`] is the journal's view of the service: per-job
//! counter watermarks, the lease ledger, and the reclaim pool. Two
//! properties carry the whole recovery design:
//!
//! * **Determinism** — applying the same record stream to the same
//!   base always yields a byte-identical [`RecoveredState::serialize`]
//!   image (jobs live in a `BTreeMap`, every encoding is canonical
//!   little-endian), so "replay twice, compare digests" is a real
//!   test, and the snapshot is just the serialized state.
//! * **Idempotence** — re-applying a record the state already
//!   reflects is a no-op: `JobCreated` inserts only if absent,
//!   `Granted` advances counters by max-watermark and skips lease ids
//!   already in the ledger, `Settled`/`Reclaimed` skip leases already
//!   settled. This lets a snapshot be taken from *live* state that may
//!   already include transitions whose records sit after the snapshot
//!   boundary; replaying the overlap changes nothing.

use std::collections::BTreeMap;

use dls::switchable::{Decision, SchedKind, SwitchReason};
use resilience::lease::{LeaseState, LeaseTable};

use crate::record::JournalRecord;

/// Rank recorded as the reclaimer when recovery re-arms a lease whose
/// owner died with the server (mirrors the service's own
/// server-reclaimer sentinel).
pub const RECOVERY_RECLAIMER: u32 = u32::MAX;

/// Replayed image of one job.
#[derive(Clone, Debug, Default)]
pub struct JobImage {
    /// Total iterations.
    pub n: u64,
    /// Scheduling technique (or AUTO) the job was created with.
    pub kind: Option<SchedKind>,
    /// Per-worker weights.
    pub weights: Vec<f64>,
    /// Chunk-index counter watermark.
    pub step: u64,
    /// Scheduled-iterations counter watermark.
    pub scheduled: u64,
    /// Iterations settled exactly once.
    pub completed: u64,
    /// True once every iteration settled.
    pub done: bool,
    /// Ranges awaiting re-execution, oldest first.
    pub reclaim_pool: Vec<(u64, u64)>,
    /// Tuner decision history, in dense `seq` order. The technique
    /// active at recovery is the last decision's `to` (or `kind` if no
    /// decision was ever journaled).
    pub decisions: Vec<Decision>,
    /// Full lease ledger (dense ids).
    pub leases: LeaseTable,
}

impl JobImage {
    /// The technique active when the journal ended: the last switch's
    /// target, else the creation kind.
    pub fn active_kind(&self) -> Option<SchedKind> {
        self.decisions.last().map(|d| d.to).or(self.kind)
    }
}

/// A record that cannot be applied to the current state — always
/// corruption or a journaling bug, never a normal outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// `Granted`/`Settled`/... names a job with no `JobCreated`.
    UnknownJob(u64),
    /// A grant's lease id skips ahead of the ledger (ids are dense).
    NonDenseLease {
        /// Offending job.
        job: u64,
        /// Lease id in the record.
        lease: u64,
        /// Ledger length it should have matched.
        ledger: u64,
    },
    /// `Settled`/`Reclaimed` names a lease id never granted.
    UnknownLease {
        /// Offending job.
        job: u64,
        /// Lease id in the record.
        lease: u64,
    },
    /// A `TechniqueSwitched` record's sequence number skips ahead of
    /// the job's decision history (seqs are dense).
    NonDenseDecision {
        /// Offending job.
        job: u64,
        /// Sequence number in the record.
        seq: u32,
        /// History length it should have matched.
        have: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::UnknownJob(job) => write!(f, "record references unknown job {job}"),
            ReplayError::NonDenseLease { job, lease, ledger } => {
                write!(f, "job {job}: grant of lease {lease} skips ledger length {ledger}")
            }
            ReplayError::UnknownLease { job, lease } => {
                write!(f, "job {job}: settlement of unknown lease {lease}")
            }
            ReplayError::NonDenseDecision { job, seq, have } => {
                write!(f, "job {job}: switch decision seq {seq} skips history length {have}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// The service state a journal replays into.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// Highest epoch seen in a `ServerStart` record (0 = none).
    pub epoch: u32,
    /// Jobs by id, in id order.
    pub jobs: BTreeMap<u64, JobImage>,
    /// Jobs ever created (monotone; job ids are allocated densely so
    /// this doubles as the next job id to hand out).
    pub jobs_created: u64,
    /// True when the stream ends in a clean `Drained` record for the
    /// latest epoch.
    pub drained: bool,
}

impl RecoveredState {
    /// Empty state (no journal yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one record. Idempotent: records the state already
    /// reflects are no-ops.
    pub fn apply(&mut self, rec: &JournalRecord) -> Result<(), ReplayError> {
        match rec {
            JournalRecord::ServerStart { epoch } => {
                self.epoch = self.epoch.max(*epoch);
                self.drained = false;
            }
            JournalRecord::JobCreated { job, n, kind, weights } => {
                self.jobs_created = self.jobs_created.max(job + 1);
                self.jobs.entry(*job).or_insert_with(|| JobImage {
                    n: *n,
                    kind: Some(*kind),
                    weights: weights.clone(),
                    ..JobImage::default()
                });
            }
            JournalRecord::Granted { job, step, scheduled, grants } => {
                let img = self.jobs.get_mut(job).ok_or(ReplayError::UnknownJob(*job))?;
                img.step = img.step.max(*step);
                img.scheduled = img.scheduled.max(*scheduled);
                for g in grants {
                    let ledger = img.leases.len();
                    if g.lease < ledger {
                        continue; // already applied (snapshot overlap)
                    }
                    if g.lease > ledger {
                        return Err(ReplayError::NonDenseLease {
                            job: *job,
                            lease: g.lease,
                            ledger,
                        });
                    }
                    img.leases.grant(g.worker, g.lo, g.hi, 0);
                    if g.from_pool {
                        if let Some(pos) = img.reclaim_pool.iter().position(|&r| r == (g.lo, g.hi))
                        {
                            img.reclaim_pool.remove(pos);
                        }
                    }
                }
            }
            JournalRecord::Settled { job, leases } => {
                let img = self.jobs.get_mut(job).ok_or(ReplayError::UnknownJob(*job))?;
                for &id in leases {
                    let lease = img
                        .leases
                        .get(id)
                        .copied()
                        .ok_or(ReplayError::UnknownLease { job: *job, lease: id })?;
                    if lease.state == LeaseState::Active {
                        let _ = img.leases.complete(id);
                        img.completed += lease.hi - lease.lo;
                    }
                }
            }
            JournalRecord::Reclaimed { job, leases } => {
                let img = self.jobs.get_mut(job).ok_or(ReplayError::UnknownJob(*job))?;
                for &id in leases {
                    let lease = img
                        .leases
                        .get(id)
                        .copied()
                        .ok_or(ReplayError::UnknownLease { job: *job, lease: id })?;
                    if lease.state == LeaseState::Active {
                        let _ = img.leases.reclaim(id, RECOVERY_RECLAIMER);
                        img.reclaim_pool.push((lease.lo, lease.hi));
                    }
                }
            }
            JournalRecord::JobFinished { job } => {
                let img = self.jobs.get_mut(job).ok_or(ReplayError::UnknownJob(*job))?;
                img.done = true;
            }
            JournalRecord::Drained { epoch } => {
                if *epoch == self.epoch {
                    self.drained = true;
                }
            }
            JournalRecord::TechniqueSwitched { job, decision } => {
                let img = self.jobs.get_mut(job).ok_or(ReplayError::UnknownJob(*job))?;
                let have = img.decisions.len() as u64;
                match u64::from(decision.seq) {
                    seq if seq < have => {} // already applied (snapshot overlap)
                    seq if seq == have => img.decisions.push(*decision),
                    _ => {
                        return Err(ReplayError::NonDenseDecision {
                            job: *job,
                            seq: decision.seq,
                            have,
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-arm after a crash: every lease still active belonged to a
    /// client of a dead epoch and can never be settled — reclaim it
    /// and push its range to the pool, oldest grant first. Returns the
    /// number of leases re-armed.
    pub fn re_arm(&mut self) -> u64 {
        let mut armed = 0;
        for img in self.jobs.values_mut() {
            let active: Vec<u64> = img.leases.active(None).map(|l| l.id).collect();
            for id in active {
                if let Ok(range) = img.leases.reclaim(id, RECOVERY_RECLAIMER) {
                    img.reclaim_pool.push(range);
                    armed += 1;
                }
            }
        }
        armed
    }

    /// Canonical serialization — the snapshot body, and the input to
    /// [`RecoveredState::digest`].
    pub fn serialize(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.push(self.drained as u8);
        b.extend_from_slice(&self.jobs_created.to_le_bytes());
        b.extend_from_slice(&(self.jobs.len() as u64).to_le_bytes());
        for (&id, img) in &self.jobs {
            b.extend_from_slice(&id.to_le_bytes());
            b.extend_from_slice(&img.n.to_le_bytes());
            b.push(img.kind.map_or(u8::MAX, SchedKind::to_byte));
            b.extend_from_slice(&(img.weights.len() as u32).to_le_bytes());
            for w in &img.weights {
                b.extend_from_slice(&w.to_bits().to_le_bytes());
            }
            b.extend_from_slice(&img.step.to_le_bytes());
            b.extend_from_slice(&img.scheduled.to_le_bytes());
            b.extend_from_slice(&img.completed.to_le_bytes());
            b.push(img.done as u8);
            b.extend_from_slice(&(img.reclaim_pool.len() as u64).to_le_bytes());
            for &(lo, hi) in &img.reclaim_pool {
                b.extend_from_slice(&lo.to_le_bytes());
                b.extend_from_slice(&hi.to_le_bytes());
            }
            b.extend_from_slice(&(img.decisions.len() as u32).to_le_bytes());
            for d in &img.decisions {
                b.extend_from_slice(&d.seq.to_le_bytes());
                b.extend_from_slice(&d.step.to_le_bytes());
                b.extend_from_slice(&d.scheduled.to_le_bytes());
                b.push(d.from.to_byte());
                b.push(d.to.to_byte());
                b.push(d.reason.to_byte());
            }
            img.leases.serialize_into(&mut b);
        }
        b
    }

    /// Inverse of [`RecoveredState::serialize`]. `None` on malformed
    /// input.
    pub fn deserialize(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let u32_at = |b: &[u8], off: &mut usize| -> Option<u32> {
            let s = b.get(*off..*off + 4)?;
            *off += 4;
            Some(u32::from_le_bytes(s.try_into().ok()?))
        };
        let u64_at = |b: &[u8], off: &mut usize| -> Option<u64> {
            let s = b.get(*off..*off + 8)?;
            *off += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        };
        let u8_at = |b: &[u8], off: &mut usize| -> Option<u8> {
            let v = *b.get(*off)?;
            *off += 1;
            Some(v)
        };

        let epoch = u32_at(bytes, &mut off)?;
        let drained = u8_at(bytes, &mut off)? != 0;
        let jobs_created = u64_at(bytes, &mut off)?;
        let job_count = u64_at(bytes, &mut off)?;
        if job_count > (bytes.len() as u64 - off as u64) / 8 {
            return None;
        }
        let mut jobs = BTreeMap::new();
        for _ in 0..job_count {
            let id = u64_at(bytes, &mut off)?;
            let n = u64_at(bytes, &mut off)?;
            let kind = match u8_at(bytes, &mut off)? {
                u8::MAX => None,
                k => Some(SchedKind::from_byte(k)?),
            };
            let wcount = u32_at(bytes, &mut off)? as usize;
            if wcount > (bytes.len() - off) / 8 {
                return None;
            }
            let mut weights = Vec::with_capacity(wcount);
            for _ in 0..wcount {
                weights.push(f64::from_bits(u64_at(bytes, &mut off)?));
            }
            let step = u64_at(bytes, &mut off)?;
            let scheduled = u64_at(bytes, &mut off)?;
            let completed = u64_at(bytes, &mut off)?;
            let done = u8_at(bytes, &mut off)? != 0;
            let pcount = u64_at(bytes, &mut off)?;
            if pcount > (bytes.len() as u64 - off as u64) / 16 {
                return None;
            }
            let mut reclaim_pool = Vec::with_capacity(pcount as usize);
            for _ in 0..pcount {
                let lo = u64_at(bytes, &mut off)?;
                let hi = u64_at(bytes, &mut off)?;
                reclaim_pool.push((lo, hi));
            }
            let dcount = u32_at(bytes, &mut off)? as usize;
            // 27 bytes per decision: u32 + 2*u64 + 3 single bytes.
            if dcount > (bytes.len() - off) / 27 {
                return None;
            }
            let mut decisions = Vec::with_capacity(dcount);
            for _ in 0..dcount {
                decisions.push(Decision {
                    seq: u32_at(bytes, &mut off)?,
                    step: u64_at(bytes, &mut off)?,
                    scheduled: u64_at(bytes, &mut off)?,
                    from: SchedKind::from_byte(u8_at(bytes, &mut off)?)?,
                    to: SchedKind::from_byte(u8_at(bytes, &mut off)?)?,
                    reason: SwitchReason::from_byte(u8_at(bytes, &mut off)?)?,
                });
            }
            let (leases, used) = LeaseTable::deserialize(&bytes[off..])?;
            off += used;
            jobs.insert(
                id,
                JobImage {
                    n,
                    kind,
                    weights,
                    step,
                    scheduled,
                    completed,
                    done,
                    reclaim_pool,
                    decisions,
                    leases,
                },
            );
        }
        (off == bytes.len()).then_some(Self { epoch, jobs, jobs_created, drained })
    }

    /// FNV-1a over the canonical serialization — a cheap, stable
    /// fingerprint for replay-determinism checks.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.serialize() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GrantEntry;

    fn granted(job: u64, step: u64, scheduled: u64, grants: Vec<GrantEntry>) -> JournalRecord {
        JournalRecord::Granted { job, step, scheduled, grants }
    }

    fn small_run() -> Vec<JournalRecord> {
        vec![
            JournalRecord::ServerStart { epoch: 1 },
            JournalRecord::JobCreated { job: 0, n: 100, kind: SchedKind::Auto, weights: vec![] },
            granted(
                0,
                2,
                2,
                vec![
                    GrantEntry { lease: 0, worker: 1, lo: 0, hi: 1, from_pool: false },
                    GrantEntry { lease: 1, worker: 2, lo: 1, hi: 2, from_pool: false },
                ],
            ),
            JournalRecord::Settled { job: 0, leases: vec![0] },
            JournalRecord::Reclaimed { job: 0, leases: vec![1] },
            granted(
                0,
                2,
                2,
                vec![GrantEntry { lease: 2, worker: 3, lo: 1, hi: 2, from_pool: true }],
            ),
            JournalRecord::TechniqueSwitched { job: 0, decision: decision(0) },
            JournalRecord::TechniqueSwitched { job: 0, decision: decision(1) },
        ]
    }

    fn decision(seq: u32) -> Decision {
        Decision {
            seq,
            step: 2 + u64::from(seq),
            scheduled: 2,
            from: if seq == 0 { dls::Kind::SS.into() } else { dls::Kind::GSS.into() },
            to: if seq == 0 { dls::Kind::GSS.into() } else { SchedKind::Af },
            reason: SwitchReason::Overhead,
        }
    }

    fn apply_all(recs: &[JournalRecord]) -> RecoveredState {
        let mut st = RecoveredState::new();
        for r in recs {
            st.apply(r).unwrap();
        }
        st
    }

    #[test]
    fn replay_basic_run() {
        let st = apply_all(&small_run());
        assert_eq!(st.epoch, 1);
        assert_eq!(st.jobs_created, 1);
        let img = &st.jobs[&0];
        assert_eq!((img.step, img.scheduled, img.completed), (2, 2, 1));
        assert_eq!(img.leases.counts(), (3, 1, 1));
        assert!(img.reclaim_pool.is_empty(), "pool-served grant must drain the pool");
        assert!(!img.done);
        assert_eq!(img.decisions, vec![decision(0), decision(1)]);
        assert_eq!(img.active_kind(), Some(SchedKind::Af));
    }

    #[test]
    fn active_kind_falls_back_to_creation_kind() {
        let st = apply_all(&small_run()[..2]);
        assert_eq!(st.jobs[&0].active_kind(), Some(SchedKind::Auto));
    }

    #[test]
    fn non_dense_decision_is_an_error() {
        let mut st = apply_all(&small_run());
        assert_eq!(
            st.apply(&JournalRecord::TechniqueSwitched { job: 0, decision: decision(5) }),
            Err(ReplayError::NonDenseDecision { job: 0, seq: 5, have: 2 })
        );
    }

    #[test]
    fn replay_is_idempotent_per_record() {
        // Applying every record twice in place must match the single
        // application byte for byte.
        let once = apply_all(&small_run());
        let mut st = RecoveredState::new();
        for r in small_run() {
            st.apply(&r).unwrap();
            st.apply(&r).unwrap();
        }
        assert_eq!(st.serialize(), once.serialize());
        assert_eq!(st.digest(), once.digest());
    }

    #[test]
    fn replay_over_snapshot_overlap_is_noop() {
        // Serialize mid-stream state, then replay the *whole* stream on
        // top of it — the prefix overlap must change nothing.
        let recs = small_run();
        let mid = apply_all(&recs[..4]);
        let mut st = RecoveredState::deserialize(&mid.serialize()).unwrap();
        for r in &recs {
            st.apply(r).unwrap();
        }
        assert_eq!(st.serialize(), apply_all(&recs).serialize());
    }

    #[test]
    fn re_arm_reclaims_only_active() {
        let mut st = apply_all(&small_run());
        assert_eq!(st.re_arm(), 1); // lease 2 was still active
        let img = &st.jobs[&0];
        assert_eq!(img.reclaim_pool, vec![(1, 2)]);
        assert_eq!(img.leases.counts(), (3, 1, 2));
        assert_eq!(st.re_arm(), 0, "second re-arm is a no-op");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut st = apply_all(&small_run());
        st.apply(&JournalRecord::JobFinished { job: 0 }).unwrap();
        st.apply(&JournalRecord::Drained { epoch: 1 }).unwrap();
        let bytes = st.serialize();
        let back = RecoveredState::deserialize(&bytes).unwrap();
        assert_eq!(back.serialize(), bytes);
        assert!(back.drained);
        assert!(back.jobs[&0].done);
        for cut in 0..bytes.len() {
            assert!(RecoveredState::deserialize(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn errors_on_corrupt_streams() {
        let mut st = RecoveredState::new();
        assert_eq!(st.apply(&granted(7, 1, 1, vec![])), Err(ReplayError::UnknownJob(7)));
        st.apply(&JournalRecord::JobCreated {
            job: 0,
            n: 10,
            kind: dls::Kind::SS.into(),
            weights: vec![],
        })
        .unwrap();
        assert_eq!(
            st.apply(&granted(
                0,
                1,
                1,
                vec![GrantEntry { lease: 5, worker: 0, lo: 0, hi: 1, from_pool: false }]
            )),
            Err(ReplayError::NonDenseLease { job: 0, lease: 5, ledger: 0 })
        );
        assert_eq!(
            st.apply(&JournalRecord::Settled { job: 0, leases: vec![3] }),
            Err(ReplayError::UnknownLease { job: 0, lease: 3 })
        );
    }

    #[test]
    fn stale_epoch_drain_does_not_mark_drained() {
        let mut st = RecoveredState::new();
        st.apply(&JournalRecord::ServerStart { epoch: 2 }).unwrap();
        st.apply(&JournalRecord::Drained { epoch: 1 }).unwrap();
        assert!(!st.drained);
        st.apply(&JournalRecord::Drained { epoch: 2 }).unwrap();
        assert!(st.drained);
    }
}
