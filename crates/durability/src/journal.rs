//! Group-commit segment writer and the open/recover path.
//!
//! Directory layout (all names zero-padded so lexical order is seq
//! order):
//!
//! ```text
//! wal-00000000000000000001.log   append-only record segments
//! wal-00000000000000000002.log
//! snap-00000000000000000002.img  newest snapshot; covers every
//!                                segment with seq < its own
//! ```
//!
//! A snapshot at boundary `S` means: the serialized
//! [`RecoveredState`] already reflects every record in segments
//! `< S`, and *may* reflect a prefix of segment `S` (snapshots are
//! taken from live state). Recovery therefore loads the newest
//! snapshot and replays every surviving segment `>= S` on top —
//! idempotence makes the overlap harmless. Segments `< S` are
//! garbage-collected when the snapshot installs.
//!
//! Writes are grouped: [`Journal::append`] encodes into an in-memory
//! buffer (safe to call under a shard lock — no I/O), and one
//! [`Journal::commit`] per event-loop cycle writes the whole burst,
//! fsyncing according to [`SyncPolicy`]. Segment rotation always
//! fsyncs the sealed segment, so only the *last* segment can ever
//! have a torn tail.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::frame;
use crate::record::JournalRecord;
use crate::replay::{RecoveredState, ReplayError};

/// Magic at the start of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DLSSNAP1";

/// When to fsync committed records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync on every commit — maximum durability, one fsync per
    /// event-loop cycle, synchronous: the commit does not return until
    /// the records are on stable storage.
    Always,
    /// Initiate an fsync every `n` commits (plus a synchronous one on
    /// drain and rotation). The fsync runs on a background flusher
    /// thread so group commit never stalls the event loop; the policy's
    /// contract is *bounding the power-loss window* (to roughly `n`
    /// commits plus one in-flight fsync), not durability-before-return.
    /// `kill -9` survival needs no fsync at all — the page cache
    /// outlives the process.
    EveryN(u32),
    /// Never fsync on commit; only on drain, rotation, and snapshot
    /// install. Survives process death (page cache persists), not
    /// power loss.
    Never,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            _ => match s.strip_prefix("every:").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Ok(SyncPolicy::EveryN(n)),
                _ => Err(format!("bad sync policy {s:?}: want always | never | every:N")),
            },
        }
    }
}

/// Tunables for [`Journal::open`].
#[derive(Clone, Debug)]
pub struct JournalOptions {
    /// Directory holding segments and snapshots (created if missing).
    pub dir: PathBuf,
    /// Fsync batching policy.
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes.
    pub segment_bytes: u64,
}

impl JournalOptions {
    /// Defaults: fsync every commit, 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), sync: SyncPolicy::Always, segment_bytes: 8 * 1024 * 1024 }
    }
}

/// Counters the service surfaces in its STATS frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records committed this incarnation.
    pub records: u64,
    /// Payload + framing bytes written this incarnation.
    pub bytes: u64,
    /// Fsyncs issued this incarnation.
    pub fsyncs: u64,
    /// Snapshots installed this incarnation.
    pub snapshots: u64,
    /// Live segment files on disk.
    pub segments: u64,
    /// Records appended but not yet committed.
    pub pending: u64,
}

/// Why a journal directory failed to open.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem error.
    Io(io::Error),
    /// A segment header is unusable or contradicts its filename.
    BadSegment {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// A torn record in a segment that is *not* the last — rotation
    /// fsyncs sealed segments, so this is corruption, not a crash
    /// artifact.
    TornMiddle {
        /// Offending file.
        path: PathBuf,
    },
    /// A CRC-clean frame whose payload is not a valid record.
    BadRecord {
        /// Offending file.
        path: PathBuf,
    },
    /// A sequence gap between surviving segments.
    MissingSegment {
        /// The seq that should exist but has no file.
        seq: u64,
    },
    /// The newest snapshot file is malformed.
    BadSnapshot {
        /// Offending file.
        path: PathBuf,
    },
    /// A record could not be applied to the recovered state.
    Apply(ReplayError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "journal i/o: {e}"),
            RecoverError::BadSegment { path, reason } => {
                write!(f, "bad segment {}: {reason}", path.display())
            }
            RecoverError::TornMiddle { path } => {
                write!(f, "torn record in non-final segment {}", path.display())
            }
            RecoverError::BadRecord { path } => {
                write!(f, "undecodable record in segment {}", path.display())
            }
            RecoverError::MissingSegment { seq } => write!(f, "missing segment seq {seq}"),
            RecoverError::BadSnapshot { path } => {
                write!(f, "malformed snapshot {}", path.display())
            }
            RecoverError::Apply(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<ReplayError> for RecoverError {
    fn from(e: ReplayError) -> Self {
        RecoverError::Apply(e)
    }
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.img"))
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// List `(seq, path)` of entries matching `prefix…suffix`, ascending.
fn list_seqs(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_seq(name, prefix, suffix) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Background fsync worker for [`SyncPolicy::EveryN`]: receives
/// clones of the live segment's file handle and fsyncs them off the
/// commit path, so the amortised policy never stalls the event loop.
/// A clone shares the inode, so syncing it covers every byte written
/// through the original handle up to the send.
#[derive(Debug)]
struct Flusher {
    tx: Option<std::sync::mpsc::Sender<File>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn() -> Flusher {
        let (tx, rx) = std::sync::mpsc::channel::<File>();
        let handle = std::thread::Builder::new()
            .name("wal-flusher".into())
            .spawn(move || {
                while let Ok(file) = rx.recv() {
                    // Coalesce any backlog: the newest handle's fsync
                    // covers everything the older sends asked for.
                    let file = rx.try_iter().last().unwrap_or(file);
                    let _ = file.sync_data();
                }
            })
            .expect("spawn wal-flusher");
        Flusher { tx: Some(tx), handle: Some(handle) }
    }

    fn send(&self, file: File) -> Result<(), ()> {
        self.tx.as_ref().ok_or(())?.send(file).map_err(|_| ())
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Group-commit write-ahead journal over one directory.
#[derive(Debug)]
pub struct Journal {
    opts: JournalOptions,
    file: File,
    seg_seq: u64,
    seg_len: u64,
    buf: Vec<u8>,
    scratch: Vec<u8>,
    pending: u64,
    commits_since_sync: u32,
    flusher: Option<Flusher>,
    stats: JournalStats,
}

impl Journal {
    /// Open (creating the directory if needed), recover the persisted
    /// state, truncate any torn tail, bump the epoch, and durably
    /// record the new incarnation's [`JournalRecord::ServerStart`]
    /// before returning. The returned state has **not** been re-armed;
    /// callers decide when to call [`RecoveredState::re_arm`].
    pub fn open(opts: JournalOptions) -> Result<(Self, RecoveredState), RecoverError> {
        fs::create_dir_all(&opts.dir)?;
        let (mut state, base_seq) = load_snapshot(&opts.dir)?;
        let mut segments = list_seqs(&opts.dir, "wal-", ".log")?;
        segments.retain(|&(seq, _)| seq >= base_seq);

        // Seq continuity: gaps below the snapshot boundary are GC'd
        // segments; gaps above it are corruption.
        for pair in segments.windows(2) {
            if pair[1].0 != pair[0].0 + 1 {
                return Err(RecoverError::MissingSegment { seq: pair[0].0 + 1 });
            }
        }
        if let (Some(&(first, _)), true) = (segments.first(), base_seq > 0) {
            if first > base_seq {
                return Err(RecoverError::MissingSegment { seq: base_seq });
            }
        }

        let last_idx = segments.len().wrapping_sub(1);
        let mut tail = None;
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scanned = frame::scan(&bytes, Some(*seq)).map_err(|e| {
                RecoverError::BadSegment { path: path.clone(), reason: e.to_string() }
            })?;
            if scanned.torn {
                if idx != last_idx {
                    return Err(RecoverError::TornMiddle { path: path.clone() });
                }
                // Crash artifact: drop the torn tail on disk too, so
                // the next append lands after the last clean record.
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scanned.clean_len as u64)?;
                f.sync_all()?;
            }
            for payload in &scanned.records {
                let rec = JournalRecord::decode(payload)
                    .ok_or_else(|| RecoverError::BadRecord { path: path.clone() })?;
                state.apply(&rec)?;
            }
            if idx == last_idx {
                tail = Some((*seq, scanned.clean_len as u64));
            }
        }

        let (seg_seq, seg_len, file) = match tail {
            Some((seq, len)) => {
                let file = OpenOptions::new().append(true).open(seg_path(&opts.dir, seq))?;
                (seq, len, file)
            }
            None => {
                // Fresh directory (or snapshot with every segment
                // GC'd): start the next segment after the boundary.
                let seq = base_seq.max(1);
                let mut file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .truncate(false)
                    .open(seg_path(&opts.dir, seq))?;
                file.write_all(&frame::segment_header(seq))?;
                fsync_dir(&opts.dir)?;
                (seq, frame::SEGMENT_HEADER_LEN as u64, file)
            }
        };

        let segments_live = list_seqs(&opts.dir, "wal-", ".log")?.len() as u64;
        let mut journal = Journal {
            opts,
            file,
            seg_seq,
            seg_len,
            buf: Vec::with_capacity(4096),
            scratch: Vec::with_capacity(256),
            pending: 0,
            commits_since_sync: 0,
            flusher: None,
            stats: JournalStats { segments: segments_live, ..JournalStats::default() },
        };

        // New incarnation: bump the epoch and make it durable before
        // any grant can go out under it.
        state.epoch += 1;
        state.drained = false;
        journal.append(&JournalRecord::ServerStart { epoch: state.epoch });
        journal.commit_inner(true)?;
        Ok((journal, state))
    }

    /// Replay a journal directory without mutating it — no torn-tail
    /// truncation, no epoch bump, no appends. The read-only twin of
    /// [`Journal::open`] for tools and determinism tests.
    pub fn replay_dir(dir: &Path) -> Result<RecoveredState, RecoverError> {
        let (mut state, base_seq) = load_snapshot(dir)?;
        let mut segments = list_seqs(dir, "wal-", ".log")?;
        segments.retain(|&(seq, _)| seq >= base_seq);
        for pair in segments.windows(2) {
            if pair[1].0 != pair[0].0 + 1 {
                return Err(RecoverError::MissingSegment { seq: pair[0].0 + 1 });
            }
        }
        let last_idx = segments.len().wrapping_sub(1);
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scanned = frame::scan(&bytes, Some(*seq)).map_err(|e| {
                RecoverError::BadSegment { path: path.clone(), reason: e.to_string() }
            })?;
            if scanned.torn && idx != last_idx {
                return Err(RecoverError::TornMiddle { path: path.clone() });
            }
            for payload in &scanned.records {
                let rec = JournalRecord::decode(payload)
                    .ok_or_else(|| RecoverError::BadRecord { path: path.clone() })?;
                state.apply(&rec)?;
            }
        }
        Ok(state)
    }

    /// Buffer one record. No I/O — safe under hot-path locks; the
    /// record becomes durable at the next [`Journal::commit`]
    /// according to the sync policy.
    pub fn append(&mut self, rec: &JournalRecord) {
        self.scratch.clear();
        rec.encode_into(&mut self.scratch);
        frame::encode_record(&self.scratch, &mut self.buf);
        self.pending += 1;
    }

    /// True when nothing is buffered.
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write every buffered record to the current segment, fsync per
    /// policy, rotate if the segment is full.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.commit_inner(false)
    }

    fn commit_inner(&mut self, force_sync: bool) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.seg_len += self.buf.len() as u64;
            self.stats.bytes += self.buf.len() as u64;
            self.stats.records += self.pending;
            self.buf.clear();
            self.pending = 0;
        }
        let sync = force_sync
            || match self.opts.sync {
                SyncPolicy::Always => true,
                SyncPolicy::EveryN(n) => {
                    self.commits_since_sync += 1;
                    self.commits_since_sync >= n
                }
                SyncPolicy::Never => false,
            };
        if sync {
            match self.opts.sync {
                // Amortised policy: initiate the fsync on the flusher
                // thread and keep going; fall back to a synchronous
                // sync if the handle can't be cloned or the flusher
                // died.
                SyncPolicy::EveryN(_) if !force_sync => match self.file.try_clone() {
                    Ok(clone) => {
                        let flusher = self.flusher.get_or_insert_with(Flusher::spawn);
                        if flusher.send(clone).is_err() {
                            self.file.sync_data()?;
                        }
                    }
                    Err(_) => self.file.sync_data()?,
                },
                _ => self.file.sync_data()?,
            }
            self.stats.fsyncs += 1;
            self.commits_since_sync = 0;
        }
        if self.seg_len >= self.opts.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Flush buffered records and force an fsync — the drain path.
    pub fn sync(&mut self) -> io::Result<()> {
        self.commit_inner(true)
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Seal the old segment durably first: recovery may treat a
        // torn record in a non-final segment as corruption only
        // because of this ordering.
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        let seq = self.seg_seq + 1;
        let mut file =
            OpenOptions::new().create_new(true).append(true).open(seg_path(&self.opts.dir, seq))?;
        file.write_all(&frame::segment_header(seq))?;
        fsync_dir(&self.opts.dir)?;
        self.file = file;
        self.seg_seq = seq;
        self.seg_len = frame::SEGMENT_HEADER_LEN as u64;
        self.stats.segments += 1;
        Ok(())
    }

    /// Phase one of a snapshot: flush + seal the current segment and
    /// rotate. Returns the boundary seq `S` — a snapshot serialized
    /// from state observed *at or after* this call covers every
    /// record in segments `< S` (and harmlessly, perhaps a prefix of
    /// `S`). Call with no shard locks held; serialize the state
    /// afterwards, then [`Journal::install_snapshot`].
    pub fn begin_snapshot(&mut self) -> io::Result<u64> {
        self.commit_inner(true)?;
        self.rotate()?;
        Ok(self.seg_seq)
    }

    /// Phase two: durably install the serialized state as the newest
    /// snapshot, then garbage-collect every segment and snapshot
    /// below the boundary.
    pub fn install_snapshot(&mut self, boundary: u64, body: &[u8]) -> io::Result<()> {
        let tmp = self.opts.dir.join("snap.tmp");
        let final_path = snap_path(&self.opts.dir, boundary);
        {
            let mut f = File::create(&tmp)?;
            let mut bytes = Vec::with_capacity(body.len() + 24);
            bytes.extend_from_slice(SNAPSHOT_MAGIC);
            bytes.extend_from_slice(&boundary.to_le_bytes());
            frame::encode_record(body, &mut bytes);
            f.write_all(&bytes)?;
            f.sync_all()?;
            self.stats.fsyncs += 1;
            self.stats.bytes += bytes.len() as u64;
        }
        fs::rename(&tmp, &final_path)?;
        fsync_dir(&self.opts.dir)?;
        self.stats.snapshots += 1;

        for (seq, path) in list_seqs(&self.opts.dir, "wal-", ".log")? {
            if seq < boundary {
                fs::remove_file(path)?;
                self.stats.segments = self.stats.segments.saturating_sub(1);
            }
        }
        for (seq, path) in list_seqs(&self.opts.dir, "snap-", ".img")? {
            if seq < boundary {
                fs::remove_file(path)?;
            }
        }
        fsync_dir(&self.opts.dir)?;
        Ok(())
    }

    /// Current counters (pending reflects the uncommitted buffer).
    pub fn stats(&self) -> JournalStats {
        JournalStats { pending: self.pending, ..self.stats }
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }
}

/// Load the newest snapshot in `dir`, returning the base state and
/// the boundary seq (0 when no snapshot exists).
fn load_snapshot(dir: &Path) -> Result<(RecoveredState, u64), RecoverError> {
    if !dir.exists() {
        return Ok((RecoveredState::new(), 0));
    }
    let snaps = list_seqs(dir, "snap-", ".img")?;
    let Some(&(seq, ref path)) = snaps.last() else {
        return Ok((RecoveredState::new(), 0));
    };
    let bad = || RecoverError::BadSnapshot { path: path.clone() };
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(bad());
    }
    let stored_seq = u64::from_le_bytes(bytes[8..16].try_into().map_err(|_| bad())?);
    if stored_seq != seq {
        return Err(bad());
    }
    // The body is one CRC frame; reuse the segment scanner by faking
    // a header-less scan: frame layout is identical.
    let framed = &bytes[16..];
    if framed.len() < frame::RECORD_HEADER_LEN {
        return Err(bad());
    }
    let len = u32::from_le_bytes(framed[..4].try_into().map_err(|_| bad())?) as usize;
    let crc = u32::from_le_bytes(framed[4..8].try_into().map_err(|_| bad())?);
    let body = framed.get(frame::RECORD_HEADER_LEN..).ok_or_else(bad)?;
    if body.len() != len || frame::crc32(body) != crc {
        return Err(bad());
    }
    let state = RecoveredState::deserialize(body).ok_or_else(bad)?;
    Ok((state, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GrantEntry;
    use dls::Kind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("durability-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> JournalOptions {
        JournalOptions::new(dir)
    }

    #[test]
    fn fresh_open_bumps_epoch_and_persists_it() {
        let dir = tmpdir("fresh");
        let (j, st) = Journal::open(opts(&dir)).unwrap();
        assert_eq!(st.epoch, 1);
        assert!(st.jobs.is_empty());
        drop(j);
        let (j2, st2) = Journal::open(opts(&dir)).unwrap();
        assert_eq!(st2.epoch, 2, "every incarnation bumps the epoch");
        drop(j2);
        let replayed = Journal::replay_dir(&dir).unwrap();
        assert_eq!(replayed.epoch, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmpdir("reopen");
        let (mut j, st) = Journal::open(opts(&dir)).unwrap();
        assert_eq!(st.epoch, 1);
        j.append(&JournalRecord::JobCreated {
            job: 0,
            n: 50,
            kind: Kind::TSS.into(),
            weights: vec![],
        });
        j.append(&JournalRecord::Granted {
            job: 0,
            step: 1,
            scheduled: 8,
            grants: vec![GrantEntry { lease: 0, worker: 4, lo: 0, hi: 8, from_pool: false }],
        });
        j.commit().unwrap();
        let stats = j.stats();
        assert_eq!(stats.records, 3); // ServerStart + 2
        assert!(stats.fsyncs >= 2);
        drop(j);

        let (_j2, st2) = Journal::open(opts(&dir)).unwrap();
        assert_eq!(st2.epoch, 2);
        let img = &st2.jobs[&0];
        assert_eq!((img.n, img.step, img.scheduled), (50, 1, 8));
        assert_eq!(img.leases.counts(), (1, 0, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_appends_are_lost_committed_survive() {
        let dir = tmpdir("uncommitted");
        let (mut j, _) = Journal::open(opts(&dir)).unwrap();
        j.append(&JournalRecord::JobCreated {
            job: 0,
            n: 9,
            kind: Kind::SS.into(),
            weights: vec![],
        });
        j.commit().unwrap();
        j.append(&JournalRecord::JobFinished { job: 0 });
        assert_eq!(j.stats().pending, 1);
        drop(j); // crash with a dirty buffer
        let (_j2, st) = Journal::open(opts(&dir)).unwrap();
        assert!(st.jobs.contains_key(&0));
        assert!(!st.jobs[&0].done, "uncommitted record must not replay");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_snapshot_gc() {
        let dir = tmpdir("rotate");
        let mut o = opts(&dir);
        o.segment_bytes = 256; // force frequent rotation
        let (mut j, _) = Journal::open(o.clone()).unwrap();
        j.append(&JournalRecord::JobCreated {
            job: 0,
            n: 1000,
            kind: Kind::SS.into(),
            weights: vec![],
        });
        for i in 0..40u64 {
            j.append(&JournalRecord::Granted {
                job: 0,
                step: i + 1,
                scheduled: i + 1,
                grants: vec![GrantEntry {
                    lease: i,
                    worker: 0,
                    lo: i,
                    hi: i + 1,
                    from_pool: false,
                }],
            });
            j.commit().unwrap();
        }
        assert!(j.stats().segments > 1, "rotation should have happened");

        let boundary = j.begin_snapshot().unwrap();
        let state = Journal::replay_dir(&dir).unwrap();
        j.install_snapshot(boundary, &state.serialize()).unwrap();
        let live = list_seqs(&dir, "wal-", ".log").unwrap();
        assert!(live.iter().all(|&(seq, _)| seq >= boundary), "old segments GC'd");
        assert_eq!(j.stats().snapshots, 1);
        drop(j);

        let (_j2, st) = Journal::open(o).unwrap();
        assert_eq!(st.jobs[&0].scheduled, 40);
        assert_eq!(st.jobs[&0].leases.len(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_torn_middle_errors() {
        let dir = tmpdir("torn");
        let (mut j, _) = Journal::open(opts(&dir)).unwrap();
        j.append(&JournalRecord::JobCreated {
            job: 0,
            n: 5,
            kind: Kind::SS.into(),
            weights: vec![],
        });
        j.commit().unwrap();
        j.append(&JournalRecord::JobFinished { job: 0 });
        j.commit().unwrap();
        let seg = seg_path(&dir, 1);
        drop(j);

        // Tear the last 3 bytes: the JobFinished record is torn away.
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let (_j2, st) = Journal::open(opts(&dir)).unwrap();
        assert!(st.jobs.contains_key(&0));
        assert!(!st.jobs[&0].done);

        // A torn record in a non-final segment is corruption.
        let next = seg_path(&dir, 2);
        let mut bytes = frame::segment_header(2).to_vec();
        frame::encode_record(&JournalRecord::Drained { epoch: 9 }.encode(), &mut bytes);
        fs::write(&next, &bytes[..bytes.len() - 1]).unwrap();
        let bytes3 = frame::segment_header(3).to_vec();
        fs::write(seg_path(&dir, 3), bytes3).unwrap();
        match Journal::open(opts(&dir)) {
            Err(RecoverError::TornMiddle { path }) => assert_eq!(path, next),
            other => panic!("expected TornMiddle, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_detected() {
        let dir = tmpdir("gap");
        let mut o = opts(&dir);
        o.segment_bytes = 32;
        let (mut j, _) = Journal::open(o.clone()).unwrap();
        for _ in 0..6 {
            j.append(&JournalRecord::Drained { epoch: 0 });
            j.commit().unwrap();
        }
        assert!(j.stats().segments >= 3);
        drop(j);
        fs::remove_file(seg_path(&dir, 2)).unwrap();
        assert!(matches!(Journal::open(o), Err(RecoverError::MissingSegment { seq: 2 })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policy_batches_fsyncs() {
        let dir = tmpdir("syncpolicy");
        let mut o = opts(&dir);
        o.sync = SyncPolicy::EveryN(4);
        let (mut j, _) = Journal::open(o).unwrap();
        let base = j.stats().fsyncs;
        for _ in 0..8 {
            j.append(&JournalRecord::Drained { epoch: 0 });
            j.commit().unwrap();
        }
        assert_eq!(j.stats().fsyncs - base, 2, "8 commits at every:4 = 2 fsyncs");
        j.sync().unwrap();
        assert_eq!(j.stats().fsyncs - base, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!("always".parse(), Ok(SyncPolicy::Always));
        assert_eq!("never".parse(), Ok(SyncPolicy::Never));
        assert_eq!("every:16".parse(), Ok(SyncPolicy::EveryN(16)));
        assert!("every:0".parse::<SyncPolicy>().is_err());
        assert!("sometimes".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tmpdir("badsnap");
        let (mut j, _) = Journal::open(opts(&dir)).unwrap();
        let boundary = j.begin_snapshot().unwrap();
        let state = Journal::replay_dir(&dir).unwrap();
        j.install_snapshot(boundary, &state.serialize()).unwrap();
        drop(j);
        let snap = snap_path(&dir, boundary);
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();
        assert!(matches!(Journal::open(opts(&dir)), Err(RecoverError::BadSnapshot { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
