//! Crash-at-record-boundary adversary: a SIGKILL can land between any
//! two journal appends. For **every** such boundary of a realistic
//! campaign — three workers, settle lag, one mid-campaign client death
//! — recovery (replay + re-arm) followed by a resumed campaign must
//! settle every iteration **exactly once against the sequential spec**:
//! the union of all acknowledged ranges, pre-crash and post-crash,
//! covers `[0, n)` with multiplicity one.
//!
//! The acknowledgement rule mirrors the service's journal-before-ack
//! barrier: a settle is acked to its worker only once its `Settled`
//! record is durable, so a crash-truncated journal never strands an
//! acked range. The seeded-broken variant severs exactly that link —
//! it acks settles but "forgets" to journal them (the service-level
//! analogue of the `LostIterations` refiller bug the model checker
//! pins) — and is pinned to its counterexample: recovery re-arms the
//! already-acked lease and the range is executed and acked **twice**.
//!
//! Swept for every technique the service journals chunk watermarks
//! for: {SS, GSS, TSS, FAC2}, all with leases.

use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, Kind, LoopSpec, SchedState, Technique};
use durability::frame::{encode_record, segment_header};
use durability::journal::{Journal, JournalOptions, SyncPolicy};
use durability::record::{GrantEntry, JournalRecord};
use durability::replay::JobImage;
use std::fs;
use std::path::{Path, PathBuf};

const JOB: u64 = 0;
const N: u64 = 24;
const KINDS: [Kind; 4] = [Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("durability-adv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// In-memory mirror of the service's per-job scheduling semantics:
/// reclaim pool first, then fresh advances of the two counters through
/// the real `dls` calculator — the deterministic chunk function the
/// whole recovery design leans on.
struct Sim {
    img: JobImage,
    spec: LoopSpec,
    tech: Technique,
}

impl Sim {
    fn new(kind: Kind, n: u64) -> Sim {
        let mut img = JobImage { n, kind: Some(kind.into()), ..JobImage::default() };
        img.done = n == 0;
        Sim { img, spec: LoopSpec::new(n, 8), tech: Technique::from_kind(kind) }
    }

    fn from_image(img: JobImage) -> Sim {
        let kind = match img.kind.expect("recovered job has a kind") {
            dls::SchedKind::Fixed(k) => k,
            other => panic!("this adversary drives pure kinds only, got {other}"),
        };
        Sim { spec: LoopSpec::new(img.n, 8), tech: Technique::from_kind(kind), img }
    }

    /// Grant one chunk to `worker`, mirroring `Job::fetch` with batch 1.
    fn fetch_one(&mut self, worker: u32) -> Option<GrantEntry> {
        if !self.img.reclaim_pool.is_empty() {
            let (lo, hi) = self.img.reclaim_pool.remove(0);
            let lease = self.img.leases.grant(worker, lo, hi, 0);
            return Some(GrantEntry { lease, worker, lo, hi, from_pool: true });
        }
        if self.img.scheduled < self.img.n {
            let state = SchedState { step: self.img.step, scheduled: self.img.scheduled };
            let ctx = WorkerCtx { worker, weight: 1.0 };
            let size = self
                .tech
                .chunk_size(&self.spec, state, ctx)
                .clamp(1, self.img.n - self.img.scheduled);
            let lo = self.img.scheduled;
            self.img.step += 1;
            self.img.scheduled += size;
            let lease = self.img.leases.grant(worker, lo, lo + size, 0);
            return Some(GrantEntry { lease, worker, lo, hi: lo + size, from_pool: false });
        }
        None
    }

    /// Settle a lease; returns its range.
    fn settle(&mut self, lease: u64) -> (u64, u64) {
        let l = *self.img.leases.get(lease).expect("settle known lease");
        self.img.leases.complete(lease).expect("settle active lease");
        self.img.completed += l.hi - l.lo;
        if self.img.completed == self.img.n {
            self.img.done = true;
        }
        (l.lo, l.hi)
    }

    /// Kill a client: reclaim its active leases into the pool.
    fn disconnect(&mut self, worker: u32) -> Vec<u64> {
        let ids: Vec<u64> = self.img.leases.active(Some(worker)).map(|l| l.id).collect();
        for &id in &ids {
            let range = self.img.leases.reclaim(id, worker).expect("reclaim active");
            self.img.reclaim_pool.push(range);
        }
        ids
    }

    fn granted(&self, grants: Vec<GrantEntry>) -> JournalRecord {
        JournalRecord::Granted {
            job: JOB,
            step: self.img.step,
            scheduled: self.img.scheduled,
            grants,
        }
    }
}

/// One journal-visible event of the fault-free campaign: the record
/// the server would append (None = the seeded bug swallowed it) plus
/// the range acked to a worker, if the event was a settle.
struct Step {
    rec: Option<JournalRecord>,
    ack: Option<(u64, u64)>,
}

/// Run the fault-free campaign and log every step. Three workers fetch
/// round-robin with a settle lag of one chunk; worker 1 dies in round
/// 2 and its leases are reclaimed. `journal_settles = false` seeds the
/// broken variant: settles are acked but never journaled.
fn campaign(kind: Kind, journal_settles: bool) -> Vec<Step> {
    let mut sim = Sim::new(kind, N);
    let mut steps = Vec::new();
    let mut held: Vec<Vec<u64>> = vec![Vec::new(); 3];
    let mut dead = [false; 3];
    let mut round = 0u32;
    while !sim.img.done {
        for w in 0..3u32 {
            if dead[w as usize] {
                continue;
            }
            if round == 2 && w == 1 {
                // Client death mid-campaign: server reclaims.
                dead[1] = true;
                let ids = sim.disconnect(1);
                if !ids.is_empty() {
                    steps.push(Step {
                        rec: Some(JournalRecord::Reclaimed { job: JOB, leases: ids }),
                        ack: None,
                    });
                }
                continue;
            }
            // Settle the oldest held lease (lag 1), then fetch.
            if let Some(lease) = held[w as usize].first().copied() {
                held[w as usize].remove(0);
                let range = sim.settle(lease);
                let rec = journal_settles
                    .then(|| JournalRecord::Settled { job: JOB, leases: vec![lease] });
                steps.push(Step { rec, ack: Some(range) });
                if sim.img.done {
                    break;
                }
            }
            if let Some(g) = sim.fetch_one(w) {
                held[w as usize].push(g.lease);
                let rec = sim.granted(vec![g]);
                steps.push(Step { rec: Some(rec), ack: None });
            }
        }
        round += 1;
        assert!(round < 10_000, "campaign must terminate");
    }
    steps.push(Step { rec: Some(JournalRecord::JobFinished { job: JOB }), ack: None });
    steps
}

/// Write a journal dir whose single segment holds the epoch-1 preamble
/// plus every journaled record of `steps[..k]` — byte-exact what a
/// SIGKILL after the k-th append leaves behind.
fn write_prefix(dir: &Path, kind: Kind, steps: &[Step], k: usize) {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).expect("mkdir");
    let mut bytes = segment_header(1).to_vec();
    let preamble = [
        JournalRecord::ServerStart { epoch: 1 },
        JournalRecord::JobCreated { job: JOB, n: N, kind: kind.into(), weights: vec![] },
    ];
    for rec in preamble.iter().chain(steps[..k].iter().filter_map(|s| s.rec.as_ref())) {
        encode_record(&rec.encode(), &mut bytes);
    }
    fs::write(dir.join(format!("wal-{:020}.log", 1u64)), &bytes).expect("write segment");
}

/// Recover from `dir` and drive the campaign to completion with a
/// fresh worker, journaling normally. Returns the post-crash acked
/// ranges and the final completed count.
fn recover_and_finish(dir: &Path) -> (Vec<(u64, u64)>, u64) {
    let mut opts = JournalOptions::new(dir);
    opts.sync = SyncPolicy::Never; // the adversary measures state, not fsyncs
    let (mut journal, mut state) = Journal::open(opts).expect("recover");
    assert_eq!(state.epoch, 2, "restart bumps the epoch");
    state.re_arm();
    let img = state.jobs.get(&JOB).expect("job survived the journal").clone();
    let mut sim = Sim::from_image(img);
    let mut acked = Vec::new();
    while let Some(g) = sim.fetch_one(7) {
        journal.append(&sim.granted(vec![g]));
        let range = sim.settle(g.lease);
        journal.append(&JournalRecord::Settled { job: JOB, leases: vec![g.lease] });
        acked.push(range);
    }
    if sim.img.done {
        journal.append(&JournalRecord::JobFinished { job: JOB });
    }
    journal.commit().expect("commit resume");
    (acked, sim.img.completed)
}

/// Count how often each iteration was acked across both epochs.
fn multiplicity(pre: &[(u64, u64)], post: &[(u64, u64)]) -> Vec<u32> {
    let mut counts = vec![0u32; N as usize];
    for &(lo, hi) in pre.iter().chain(post) {
        for i in lo..hi {
            counts[i as usize] += 1;
        }
    }
    counts
}

#[test]
fn every_crash_boundary_recovers_exactly_once() {
    for kind in KINDS {
        let steps = campaign(kind, true);
        assert!(steps.len() >= 10, "{kind:?}: campaign is non-trivial");
        let dir = tmpdir(&format!("clean-{kind:?}"));
        for k in 0..=steps.len() {
            write_prefix(&dir, kind, &steps, k);
            // Journal-before-ack: only settles whose record survived
            // the crash were ever acked to a worker.
            let pre: Vec<(u64, u64)> =
                steps[..k].iter().filter(|s| s.rec.is_some()).filter_map(|s| s.ack).collect();
            let (post, completed) = recover_and_finish(&dir);
            assert_eq!(completed, N, "{kind:?} crash@{k}: iterations lost");
            for (i, &c) in multiplicity(&pre, &post).iter().enumerate() {
                assert_eq!(
                    c, 1,
                    "{kind:?} crash@{k}: iteration {i} acked {c} times (exactly-once violated)"
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_settle_skip_is_pinned_to_double_execution() {
    for kind in KINDS {
        let steps = campaign(kind, false);
        // Crash immediately after the first settle ack. Its record was
        // never journaled, so recovery sees an *active* lease, re-arms
        // the range, and the resumed campaign executes and acks it a
        // second time — the durability analogue of the model checker's
        // LostIterations counterexample, surfacing as a linearizability
        // violation of the acked history.
        let first_settle =
            steps.iter().position(|s| s.ack.is_some()).expect("campaign settles something");
        let k = first_settle + 1;
        let doubled_range = steps[first_settle].ack.expect("settle step has a range");

        let dir = tmpdir(&format!("broken-{kind:?}"));
        write_prefix(&dir, kind, &steps, k);
        // The broken server acked the settle even though the journal
        // never heard of it.
        let pre: Vec<(u64, u64)> = steps[..k].iter().filter_map(|s| s.ack).collect();
        assert_eq!(pre, vec![doubled_range]);

        let (post, completed) = recover_and_finish(&dir);
        assert_eq!(completed, N, "the resumed campaign itself still finishes");
        let counts = multiplicity(&pre, &post);
        let doubled: Vec<u64> = (0..N).filter(|&i| counts[i as usize] == 2).collect();
        let expected: Vec<u64> = (doubled_range.0..doubled_range.1).collect();
        assert_eq!(
            doubled, expected,
            "{kind:?}: exactly the forgotten settle's range must be double-executed"
        );
        assert!(
            counts.iter().all(|&c| (1..=2).contains(&c)),
            "{kind:?}: nothing may be lost outright"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
