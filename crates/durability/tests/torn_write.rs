//! Torn-write matrix: SIGKILL can truncate the journal tail at *any*
//! byte offset — inside a length prefix, inside a CRC, mid-payload —
//! and a disk can hand back a bit-flipped record that still has a
//! plausible length. Whatever the damage to the **last** record,
//! [`Journal::open`] must recover exactly the longest clean prefix of
//! records: never panic, never error, and never resurrect state the
//! prefix does not justify (no double-grant).
//!
//! The matrix is exhaustive over the segment body: every cut offset
//! from the segment header to the full file length. A cut that lands
//! on a record boundary is a clean file; a cut inside record `k`
//! destroys `k` and everything after it — either way the recovered
//! state must be byte-identical (by canonical digest) to replaying the
//! surviving prefix.

use durability::journal::{Journal, JournalOptions, RecoverError};
use durability::record::{GrantEntry, JournalRecord};
use durability::replay::RecoveredState;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("durability-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Write a realistic campaign into a fresh journal dir, then return
/// the single segment's bytes. The record stream exercises every
/// variant that matters for exactly-once: create, two grant bursts
/// (one serving the reclaim pool), settle, reclaim, finish.
fn build_reference(dir: &Path) -> Vec<u8> {
    let (mut j, state) = Journal::open(JournalOptions::new(dir)).expect("fresh open");
    assert_eq!(state.epoch, 1);
    j.append(&JournalRecord::JobCreated {
        job: 0,
        n: 100,
        kind: dls::Kind::SS.into(),
        weights: vec![],
    });
    j.append(&JournalRecord::Granted {
        job: 0,
        step: 3,
        scheduled: 30,
        grants: vec![
            GrantEntry { lease: 0, worker: 0, lo: 0, hi: 10, from_pool: false },
            GrantEntry { lease: 1, worker: 1, lo: 10, hi: 20, from_pool: false },
            GrantEntry { lease: 2, worker: 0, lo: 20, hi: 30, from_pool: false },
        ],
    });
    j.append(&JournalRecord::Settled { job: 0, leases: vec![0, 1] });
    j.append(&JournalRecord::Reclaimed { job: 0, leases: vec![2] });
    j.append(&JournalRecord::Granted {
        job: 0,
        step: 3,
        scheduled: 30,
        grants: vec![GrantEntry { lease: 3, worker: 1, lo: 20, hi: 30, from_pool: true }],
    });
    j.append(&JournalRecord::Settled { job: 0, leases: vec![3] });
    j.commit().expect("commit");
    drop(j);

    let segs: Vec<_> = fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .collect();
    assert_eq!(segs.len(), 1, "everything fits one segment");
    fs::read(segs[0].path()).expect("read segment")
}

/// Parse the segment into `(record_end_offsets, decoded_records)` —
/// the golden boundaries the matrix cuts around.
fn boundaries(seg: &[u8]) -> (Vec<usize>, Vec<JournalRecord>) {
    const SEG_HDR: usize = durability::frame::SEGMENT_HEADER_LEN;
    const REC_HDR: usize = durability::frame::RECORD_HEADER_LEN;
    let mut ends = Vec::new();
    let mut records = Vec::new();
    let mut off = SEG_HDR;
    while off < seg.len() {
        let len = u32::from_le_bytes(seg[off..off + 4].try_into().expect("len")) as usize;
        let payload = &seg[off + REC_HDR..off + REC_HDR + len];
        records.push(JournalRecord::decode(payload).expect("decode"));
        off += REC_HDR + len;
        ends.push(off);
    }
    assert_eq!(off, seg.len(), "segment parses exactly");
    (ends, records)
}

/// Expected post-open state after a cut at `cut`: replay every record
/// whose end offset survived, then the epoch bump `open` performs.
fn expected_after_cut(ends: &[usize], records: &[JournalRecord], cut: usize) -> RecoveredState {
    let survivors = ends.iter().take_while(|&&e| e <= cut).count();
    let mut state = RecoveredState::new();
    for rec in &records[..survivors] {
        state.apply(rec).expect("golden replay");
    }
    state.epoch += 1;
    state.drained = false;
    state
}

/// The no-double-grant invariants every recovered image must satisfy,
/// whatever the cut: settled + re-armable work never exceeds the job,
/// and the counters never run past `n`.
fn assert_sane(state: &RecoveredState) {
    for (id, img) in &state.jobs {
        let pool: u64 = img.reclaim_pool.iter().map(|(lo, hi)| hi - lo).sum();
        let active: u64 = img.leases.active(None).map(|l| l.hi - l.lo).sum();
        assert!(img.scheduled <= img.n, "job {id}: scheduled past n");
        assert!(
            img.completed + pool + active <= img.n,
            "job {id}: {} settled + {pool} pooled + {active} active exceeds n={}",
            img.completed,
            img.n
        );
    }
}

#[test]
fn truncation_at_every_offset_recovers_the_clean_prefix() {
    let refdir = tmpdir("ref");
    let seg = build_reference(&refdir);
    let (ends, records) = boundaries(&seg);
    assert!(records.len() >= 7, "reference stream is non-trivial");

    let seg_name = fs::read_dir(&refdir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .expect("segment")
        .file_name();

    let scratch = tmpdir("matrix");
    fs::create_dir_all(&scratch).expect("mkdir");
    let victim = scratch.join(&seg_name);
    for cut in durability::frame::SEGMENT_HEADER_LEN..=seg.len() {
        fs::write(&victim, &seg[..cut]).expect("write cut file");

        let (journal, mut state) = Journal::open(JournalOptions::new(&scratch))
            .unwrap_or_else(|e| panic!("cut at {cut}: open failed: {e}"));
        drop(journal);
        let expected = expected_after_cut(&ends, &records, cut);
        assert_eq!(
            state.digest(),
            expected.digest(),
            "cut at {cut}: recovered state is not the clean prefix"
        );
        state.re_arm();
        assert_sane(&state);

        // `open` appended a ServerStart; wipe for the next iteration.
        for entry in fs::read_dir(&scratch).expect("read scratch") {
            fs::remove_file(entry.expect("entry").path()).expect("rm");
        }
    }
    let _ = fs::remove_dir_all(&refdir);
    let _ = fs::remove_dir_all(&scratch);
}

#[test]
fn truncated_tail_stays_truncated_and_appendable() {
    // One representative mid-record cut, end to end: recover, keep
    // journaling, reopen — the torn bytes must be gone from disk and
    // the post-recovery record must survive.
    let dir = tmpdir("appendable");
    let seg = build_reference(&dir);
    let (ends, records) = boundaries(&seg);
    let cut = ends[ends.len() - 2] + 3; // 3 bytes into the last record
    let seg_path = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .expect("segment")
        .path();
    let f = fs::OpenOptions::new().write(true).open(&seg_path).expect("open victim");
    f.set_len(cut as u64).expect("truncate");
    drop(f);

    let (mut journal, state) = Journal::open(JournalOptions::new(&dir)).expect("recover");
    assert_eq!(state.digest(), expected_after_cut(&ends, &records, cut).digest());
    journal.append(&JournalRecord::JobFinished { job: 0 });
    journal.commit().expect("commit after recovery");
    drop(journal);

    let replayed = Journal::replay_dir(&dir).expect("replay");
    assert!(replayed.jobs[&0].done, "post-recovery record survived reopen");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_last_record_is_torn_tail_not_garbage_state() {
    let refdir = tmpdir("flip-ref");
    let seg = build_reference(&refdir);
    let (ends, records) = boundaries(&seg);
    let last_start = ends[ends.len() - 2];

    let scratch = tmpdir("flip");
    fs::create_dir_all(&scratch).expect("mkdir");
    let seg_name = fs::read_dir(&refdir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .expect("segment")
        .file_name();

    // Flip one payload bit of the final record: the frame still has a
    // plausible length, but the CRC refuses it — recovery must land on
    // the previous record, and the flipped bytes must be truncated.
    let mut corrupt = seg.clone();
    let flip_at = last_start + durability::frame::RECORD_HEADER_LEN;
    corrupt[flip_at] ^= 0x10;
    fs::write(scratch.join(&seg_name), &corrupt).expect("write corrupt");

    let (journal, state) = Journal::open(JournalOptions::new(&scratch)).expect("recover");
    drop(journal);
    let expected = expected_after_cut(&ends, &records, last_start);
    assert_eq!(state.digest(), expected.digest(), "CRC-failed tail record dropped");
    assert_sane(&state);

    let _ = fs::remove_dir_all(&refdir);
    let _ = fs::remove_dir_all(&scratch);
}

#[test]
fn bit_flip_in_a_sealed_segment_is_a_typed_error_not_a_panic() {
    // In the final segment a CRC failure is indistinguishable from a
    // crash mid-append, so it is treated as a torn tail. A *sealed*
    // segment was fsynced at rotation — corruption there is a disk
    // problem, and recovery must refuse with a typed error rather than
    // silently truncating away durable records.
    let dir = tmpdir("flip-sealed");
    let mut opts = JournalOptions::new(&dir);
    opts.segment_bytes = 64; // force rotation: several segments
    let (mut j, _) = Journal::open(opts).expect("fresh open");
    for job in 0..6u64 {
        j.append(&JournalRecord::JobCreated {
            job,
            n: 10,
            kind: dls::Kind::SS.into(),
            weights: vec![],
        });
        j.commit().expect("commit");
    }
    drop(j);

    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("wal-")))
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "rotation produced sealed segments");

    // Flip one bit inside the first (sealed) segment's record payload.
    let mut bytes = fs::read(&segs[0]).expect("read sealed segment");
    let flip_at = durability::frame::SEGMENT_HEADER_LEN + durability::frame::RECORD_HEADER_LEN;
    bytes[flip_at] ^= 0x01;
    fs::write(&segs[0], &bytes).expect("write corrupt");

    match Journal::open(JournalOptions::new(&dir)) {
        Err(
            RecoverError::TornMiddle { .. }
            | RecoverError::BadSegment { .. }
            | RecoverError::BadRecord { .. },
        ) => {}
        Ok(_) => panic!("sealed-segment corruption must not open cleanly"),
        Err(e) => panic!("unexpected recover error: {e}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
