//! End-to-end chaos sweep over the virtual-time executors: seeded
//! fault plans (every one contains at least one rank crash, a third of
//! them a crash *inside* the node-window critical section) crossed
//! with inter×intra technique pairs and all four simulated backends.
//!
//! Every run must (a) terminate — the event queue drains, no deadlock;
//! (b) pass the exactly-once ledger: each iteration of the loop
//! executed exactly once despite lost chunks being re-executed from
//! leases; (c) attribute every reclaim to a surviving rank in the
//! recovery trace.

use cluster_sim::{MachineParams, SimTopology};
use dls::Kind;
use hier::config::{Approach, GlobalQueueMode, HierSpec};
use hier::sim::{
    simulate, simulate_flat_master_worker, simulate_master_worker, SimConfig, SimResult,
};
use resilience::{FaultPlan, RecoveryEvent};
use workloads::synthetic::Synthetic;
use workloads::CostTable;

const KINDS: [Kind; 5] = [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2];
const NODES: u32 = 2;
const WPN: u32 = 3;
// Iterations costly enough that seeded crash times (20k-200k virtual
// ns) land mid-run rather than after the loop already finished.
const N_ITERS: u64 = 600;

fn table() -> CostTable {
    CostTable::build(&Synthetic::uniform(N_ITERS, 2_000, 20_000, 11))
}

fn base_cfg(spec: HierSpec, approach: Approach, plan: FaultPlan) -> SimConfig {
    let mut cfg =
        SimConfig::new(SimTopology::new(NODES, WPN), MachineParams::default(), spec, approach);
    cfg.record_chunks = true;
    cfg.faults = plan;
    cfg
}

/// The ledger plus recovery-trace attribution checks shared by every
/// backend: exactly-once coverage, reclaim counters consistent with
/// the recovery events, reclaims performed by live ranks only.
fn check(r: &SimResult, label: &str) {
    let chunks: Vec<dls::Chunk> = r
        .executed
        .iter()
        .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
        .collect();
    dls::verify::check_exactly_once(&chunks, N_ITERS)
        .unwrap_or_else(|e| panic!("{label}: exactly-once ledger failed: {e:?}"));
    assert_eq!(r.stats.total_iterations, N_ITERS, "{label}: iteration total");

    let crashed: Vec<u32> = r
        .recovery
        .iter()
        .filter_map(|e| match *e {
            RecoveryEvent::Crash { rank, .. } => Some(rank),
            _ => None,
        })
        .collect();
    let mut trace_reclaims = 0u64;
    for ev in &r.recovery {
        match *ev {
            RecoveryEvent::Reclaim { by, owner, lo, hi, .. } => {
                trace_reclaims += 1;
                assert!(lo < hi, "{label}: empty reclaimed range");
                assert!(!crashed.contains(&by), "{label}: dead rank {by} performed a reclaim");
                assert!(crashed.contains(&owner), "{label}: reclaim from live owner {owner}");
            }
            RecoveryEvent::LockRepair { by, dead_holder, .. } => {
                trace_reclaims += 1;
                assert!(!crashed.contains(&by), "{label}: dead rank {by} repaired a lock");
                assert!(crashed.contains(&dead_holder), "{label}: repaired a live holder");
            }
            _ => {}
        }
    }
    let counted: u64 = r.stats.workers.iter().map(|w| w.reclaims).sum();
    assert_eq!(counted, trace_reclaims, "{label}: reclaim counters vs recovery trace");
}

#[test]
fn seeded_faults_mpi_mpi_all_technique_pairs() {
    let table = table();
    let mut total_reclaims = 0u64;
    let mut crash_runs = 0u32;
    for inter in KINDS {
        for intra in KINDS {
            for seed in 0..4u64 {
                let plan = FaultPlan::seeded(seed, NODES * WPN);
                let cfg = base_cfg(HierSpec::new(inter, intra), Approach::MpiMpi, plan);
                let r = simulate(&cfg, &table);
                let label = format!("mpi_mpi {inter:?}+{intra:?} seed {seed}");
                check(&r, &label);
                if r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Crash { .. })) {
                    crash_runs += 1;
                }
                total_reclaims += r.stats.workers.iter().map(|w| w.reclaims).sum::<u64>();
            }
        }
    }
    // The sweep must actually exercise the recovery machinery, not
    // vacuously pass on runs that finished before the fault fired.
    assert!(crash_runs > 50, "only {crash_runs} runs saw a crash");
    assert!(total_reclaims > 0, "no run lost and reclaimed a chunk");
}

#[test]
fn seeded_faults_mpi_mpi_locked_counters_mode() {
    let table = table();
    for seed in 0..6u64 {
        let plan = FaultPlan::seeded(seed, NODES * WPN);
        let mut cfg = base_cfg(HierSpec::new(Kind::GSS, Kind::FAC2), Approach::MpiMpi, plan);
        cfg.global_mode = GlobalQueueMode::LockedCounters;
        let r = simulate(&cfg, &table);
        check(&r, &format!("mpi_mpi locked-counters seed {seed}"));
    }
}

#[test]
fn seeded_faults_mpi_omp_all_technique_pairs() {
    let table = table();
    let mut crash_runs = 0u32;
    for inter in KINDS {
        for intra in KINDS {
            for seed in 0..3u64 {
                let plan = FaultPlan::seeded(seed, NODES * WPN);
                let cfg = base_cfg(HierSpec::new(inter, intra), Approach::MpiOpenMp, plan);
                let r = simulate(&cfg, &table);
                check(&r, &format!("mpi_omp {inter:?}+{intra:?} seed {seed}"));
                if !r.recovery.is_empty() {
                    crash_runs += 1;
                }
            }
        }
    }
    assert!(crash_runs > 20, "only {crash_runs} mpi_omp runs saw recovery activity");
}

#[test]
fn seeded_faults_master_worker_both_shapes() {
    let table = table();
    let mut reclaims = 0u64;
    for inter in KINDS {
        for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::FAC2] {
            for seed in 0..3u64 {
                let plan = FaultPlan::seeded(seed, NODES * WPN);
                let cfg = base_cfg(HierSpec::new(inter, intra), Approach::MpiMpi, plan);
                let hier_r = simulate_master_worker(&cfg, &table);
                check(&hier_r, &format!("hier-mw {inter:?}+{intra:?} seed {seed}"));
                let flat_r = simulate_flat_master_worker(&cfg, &table);
                check(&flat_r, &format!("flat-mw {inter:?}+{intra:?} seed {seed}"));
                reclaims += hier_r.stats.workers.iter().map(|w| w.reclaims).sum::<u64>()
                    + flat_r.stats.workers.iter().map(|w| w.reclaims).sum::<u64>();
            }
        }
    }
    assert!(reclaims > 0, "master-worker sweeps never exercised a reclaim");
}

#[test]
fn crash_holding_lock_is_repaired_not_deadlocked() {
    let table = table();
    for &(inter, intra) in &[(Kind::GSS, Kind::SS), (Kind::FAC2, Kind::GSS)] {
        // Rank 1 dies inside the critical section of its node window at
        // t=40us: the lock must be revoked and the run must finish.
        let plan = FaultPlan::none().with(
            1,
            resilience::FaultKind::CrashHoldingLock { at_ns: 40_000, after_sub_chunks: 1 },
        );
        let cfg = base_cfg(HierSpec::new(inter, intra), Approach::MpiMpi, plan);
        let r = simulate(&cfg, &table);
        check(&r, &format!("holding-lock {inter:?}+{intra:?}"));
        assert!(
            r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Crash { holding_lock: true, .. })),
            "the holding-lock crash must appear in the trace"
        );
        assert!(
            r.recovery.iter().any(|e| matches!(e, RecoveryEvent::LockRepair { .. })),
            "the seized lock must be repaired"
        );
        let revocations: u64 = r.stats.nodes.iter().map(|n| n.lock_revocations).sum();
        assert_eq!(revocations, 1, "exactly one grant revoked");
    }
}

#[test]
fn dead_refiller_fails_over() {
    let table = table();
    // Rank 4 dies right after its first global fetch-and-op lands: the
    // fetched chunk is leased, the refill role fails over.
    let plan = FaultPlan::none()
        .with(4, resilience::FaultKind::CrashAsRefiller { after_global_fetches: 1 });
    let cfg = base_cfg(HierSpec::new(Kind::FAC2, Kind::GSS), Approach::MpiMpi, plan);
    let r = simulate(&cfg, &table);
    check(&r, "dead-refiller");
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::RefillFailover { from: 4, .. })),
        "refill failover missing from trace: {:?}",
        r.recovery
    );
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Reclaim { owner: 4, .. })),
        "the dead refiller's chunk must be reclaimed: {:?}",
        r.recovery
    );
}

#[test]
fn inert_plan_reproduces_fault_free_run_exactly() {
    let table = table();
    for approach in [Approach::MpiMpi, Approach::MpiOpenMp] {
        let plain = base_cfg(HierSpec::new(Kind::GSS, Kind::GSS), approach, FaultPlan::none());
        let a = simulate(&plain, &table);
        let b = simulate(&plain, &table);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.executed, b.executed);
        assert!(a.recovery.is_empty());
    }
}

#[test]
fn message_faults_do_not_break_the_ledger() {
    let table = table();
    let drop_plan = FaultPlan::none().with(2, resilience::FaultKind::MessageDrop { at_ns: 10_000 });
    let delay_plan = FaultPlan::none()
        .with(3, resilience::FaultKind::MessageDelay { extra_ns: 20_000, from_ns: 5_000 });
    for plan in [drop_plan, delay_plan] {
        let cfg = base_cfg(HierSpec::new(Kind::TSS, Kind::FAC2), Approach::MpiMpi, plan);
        let r = simulate(&cfg, &table);
        check(&r, "message-faults");
    }
}
