//! Deterministic straggler resilience: under a 4× injected slowdown on
//! one rank, the adaptive techniques (GSS, FAC2) lose strictly less
//! makespan than STATIC — on both hierarchies. This is the paper's
//! load-imbalance argument replayed as a fault-injection scenario: the
//! dynamic techniques route work away from the slow rank, the static
//! pre-partition cannot.

use cluster_sim::{MachineParams, SimTopology};
use dls::Kind;
use hier::config::{Approach, HierSpec};
use hier::sim::{simulate, SimConfig};
use resilience::FaultPlan;
use workloads::synthetic::Synthetic;
use workloads::CostTable;

const N_ITERS: u64 = 800;

/// Makespan of `kind`+`kind` under `plan`, compute-dominated so the
/// scheduling (not lock service) decides the outcome.
fn makespan(approach: Approach, kind: Kind, plan: FaultPlan) -> u64 {
    let table = CostTable::build(&Synthetic::constant(N_ITERS, 50_000));
    let mut cfg = SimConfig::new(
        SimTopology::new(2, 4),
        MachineParams::default(),
        HierSpec::new(kind, kind),
        approach,
    );
    cfg.faults = plan;
    simulate(&cfg, &table).makespan
}

#[test]
fn adaptive_techniques_absorb_a_4x_straggler_better_than_static() {
    for approach in [Approach::MpiMpi, Approach::MpiOpenMp] {
        // Degradation ratio: straggler makespan / healthy makespan.
        let degrade = |kind: Kind| {
            let healthy = makespan(approach, kind, FaultPlan::none());
            let slowed = makespan(approach, kind, FaultPlan::straggler(1, 4.0));
            assert!(slowed >= healthy, "{approach:?} {kind:?}: straggler sped the run up");
            (slowed as f64 / healthy as f64, healthy, slowed)
        };
        let (d_static, ..) = degrade(Kind::STATIC);
        let (d_gss, ..) = degrade(Kind::GSS);
        let (d_fac2, ..) = degrade(Kind::FAC2);
        assert!(
            d_gss < d_static,
            "{approach:?}: GSS degraded {d_gss:.2}x, not better than STATIC {d_static:.2}x"
        );
        assert!(
            d_fac2 < d_static,
            "{approach:?}: FAC2 degraded {d_fac2:.2}x, not better than STATIC {d_static:.2}x"
        );
        // STATIC pays close to the full 4x on the straggler's share; the
        // adaptive schedules must shed a substantial part of that.
        assert!(d_static > 2.0, "{approach:?}: STATIC degraded only {d_static:.2}x");
    }
}

#[test]
fn straggler_runs_are_deterministic() {
    let a = makespan(Approach::MpiMpi, Kind::FAC2, FaultPlan::straggler(1, 4.0));
    let b = makespan(Approach::MpiMpi, Kind::FAC2, FaultPlan::straggler(1, 4.0));
    assert_eq!(a, b);
}
