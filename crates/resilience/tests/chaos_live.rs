//! Chaos sweep over the *real-thread* MPI+MPI executor: rank crashes
//! (plain, holding-lock, as-refiller) injected into actual threads over
//! `mpisim` windows. Recovery here is the real protocol — leases in the
//! shared window, heartbeats piggybacked on queue polls, bounded-poll
//! lock repair, refill failover — not a virtual-time model of it.
//!
//! World rank 0 hosts the global-queue window and is modelled reliable
//! (its death would take the global queue with it, the distributed
//! analogue of losing the whole job launcher), so seeded plans that
//! crash rank 0 are skipped here; the `sim` sweep covers them.
//!
//! Count-based triggers need the victim *thread* to reach its k-th
//! take before the loop drains; on an oversubscribed host the OS may
//! simply not schedule it in time. Correctness (ledger, checksum) is
//! asserted on every run; the *trigger actually fired* assertions
//! retry a few times so one unlucky scheduling round does not fail CI.

use dls::verify::check_exactly_once;
use dls::Kind;
use hier::config::{Approach, HierSpec};
use hier::live::{run_live_mpi_mpi, serial_checksum, LiveConfig, LiveResult};
use resilience::{FaultKind, FaultPlan, RecoveryEvent};
use workloads::synthetic::Synthetic;
use workloads::Spin;

const NODES: u32 = 2;
const WPN: u32 = 2;
const N_ITERS: u64 = 400;
const ATTEMPTS: u32 = 6;

fn run(spec: HierSpec, plan: FaultPlan) -> (LiveResult, u64) {
    // Spin-burned microsecond kernels so scheduling is observable: a
    // free-running kernel lets one thread drain the loop before its
    // peers even start. The serial reference checksum comes from the
    // un-burned inner workload (same checksum, no wasted wall-clock).
    let w = Spin(Synthetic::uniform(N_ITERS, 5_000, 40_000, 7));
    let serial = serial_checksum(&Synthetic::uniform(N_ITERS, 5_000, 40_000, 7));
    let mut cfg = LiveConfig::new(NODES, WPN, spec, Approach::MpiMpi);
    cfg.faults = plan;
    (run_live_mpi_mpi(&cfg, &w).expect("live faulted run"), serial)
}

fn check(r: &LiveResult, serial: u64, label: &str) {
    assert_eq!(r.checksum, serial, "{label}: checksum diverged from serial");
    assert_eq!(r.stats.total_iterations, N_ITERS, "{label}: iterations lost or duplicated");
    let chunks: Vec<dls::Chunk> = r
        .executed
        .iter()
        .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
        .collect();
    check_exactly_once(&chunks, N_ITERS)
        .unwrap_or_else(|e| panic!("{label}: exactly-once ledger failed: {e:?}"));
}

/// Run until the injected crash actually fires (correctness asserted on
/// every attempt, fired-or-not), then return the faulted result.
fn run_until_crash(spec: HierSpec, plan: &FaultPlan, label: &str) -> LiveResult {
    for _ in 0..ATTEMPTS {
        let (r, serial) = run(spec, plan.clone());
        check(&r, serial, label);
        if r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Crash { .. })) {
            return r;
        }
    }
    panic!("{label}: injected crash never fired in {ATTEMPTS} attempts");
}

#[test]
fn crash_after_take_is_reclaimed_exactly_once() {
    for &(inter, intra) in
        &[(Kind::GSS, Kind::SS), (Kind::FAC2, Kind::GSS), (Kind::TSS, Kind::FAC2)]
    {
        let plan = FaultPlan::none().with(1, FaultKind::Crash { at_ns: 0, after_sub_chunks: 1 });
        let label = format!("live crash {inter:?}+{intra:?}");
        let r = run_until_crash(HierSpec::new(inter, intra), &plan, &label);
        assert!(
            r.recovery
                .iter()
                .any(|e| matches!(e, RecoveryEvent::Crash { rank: 1, holding_lock: false, .. })),
            "{label}: wrong crash event: {:?}",
            r.recovery
        );
        assert!(
            r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Reclaim { owner: 1, .. })),
            "{label}: the dead rank's lease was never reclaimed: {:?}",
            r.recovery
        );
        let reclaims: u64 = r.stats.workers.iter().map(|w| w.reclaims).sum();
        assert!(reclaims > 0, "{label}: reclaim counters empty");
        assert_eq!(r.stats.workers[1].reclaims, 0, "{label}: the corpse reclaimed something");
    }
}

#[test]
fn crash_holding_lock_is_detected_and_repaired() {
    let plan =
        FaultPlan::none().with(3, FaultKind::CrashHoldingLock { at_ns: 0, after_sub_chunks: 1 });
    let r = run_until_crash(HierSpec::new(Kind::GSS, Kind::SS), &plan, "live holding-lock");
    assert!(
        r.recovery
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Crash { rank: 3, holding_lock: true, .. })),
        "holding-lock crash missing: {:?}",
        r.recovery
    );
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::LockRepair { dead_holder: 3, .. })),
        "abandoned lock never repaired: {:?}",
        r.recovery
    );
}

#[test]
fn crash_as_refiller_fails_the_role_over() {
    let plan = FaultPlan::none().with(2, FaultKind::CrashAsRefiller { after_global_fetches: 1 });
    let r = run_until_crash(HierSpec::new(Kind::FAC2, Kind::GSS), &plan, "live dead-refiller");
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Crash { rank: 2, .. })),
        "refiller crash missing: {:?}",
        r.recovery
    );
    // The fetched-but-undeposited chunk lives only in the corpse's
    // lease; the ledger proves it was re-executed. The stalled refill
    // flag must have been failed over for the node to finish.
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::RefillFailover { from: 2, .. })),
        "refill role never failed over: {:?}",
        r.recovery
    );
    assert!(
        r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Reclaim { owner: 2, .. })),
        "fetched chunk never reclaimed: {:?}",
        r.recovery
    );
}

#[test]
fn seeded_plans_survive_on_live_threads() {
    // Every seeded plan whose crash avoids the reliable rank 0. The
    // ledger and checksum must hold whether or not the scheduler let
    // the victim reach its trigger; across the sweep at least one
    // crash must actually have been exercised.
    let mut ran = 0;
    let mut crashed = 0;
    for seed in 0..16u64 {
        let plan = FaultPlan::seeded(seed, NODES * WPN);
        if plan.crashes(0) {
            continue;
        }
        let spec = match seed % 3 {
            0 => HierSpec::new(Kind::GSS, Kind::SS),
            1 => HierSpec::new(Kind::FAC2, Kind::GSS),
            _ => HierSpec::new(Kind::TSS, Kind::FAC2),
        };
        let (r, serial) = run(spec, plan);
        check(&r, serial, &format!("live seeded {seed}"));
        if r.recovery.iter().any(|e| matches!(e, RecoveryEvent::Crash { .. })) {
            crashed += 1;
        }
        ran += 1;
    }
    assert!(ran >= 8, "only {ran} seeded live runs executed");
    assert!(crashed > 0, "no seeded live run exercised a crash");
}

#[test]
fn straggler_slows_but_does_not_corrupt() {
    let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::GSS), FaultPlan::straggler(3, 4.0));
    check(&r, serial, "live straggler");
    assert!(r.recovery.is_empty(), "a straggler is slow, not dead");
}

#[test]
fn inert_plan_matches_fault_free_run() {
    let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::SS), FaultPlan::none());
    check(&r, serial, "live inert plan");
    assert!(r.recovery.is_empty());
    assert!(r.stats.workers.iter().all(|w| w.reclaims == 0));
}
