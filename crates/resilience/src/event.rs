//! Recovery events for traces, reports and exports.
//!
//! Executors append these to their results as they detect and repair
//! failures; the `hdls` export layer turns them into Perfetto instant
//! events so a timeline shows *who reclaimed what, when*.

use cluster_sim::Time;

/// One detection or repair action during a faulted run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A rank died.
    Crash {
        /// The dead rank.
        rank: u32,
        /// Virtual (sim) or wall-clock-since-start (live) time.
        at_ns: Time,
        /// True when it died inside the node-window critical section,
        /// still holding the exclusive lock.
        holding_lock: bool,
    },
    /// A lease outlived its owner: the grant timed out without being
    /// completed.
    LeaseExpired {
        /// The dead owner.
        owner: u32,
        /// Leased range.
        lo: u64,
        /// One past the end of the leased range.
        hi: u64,
        /// Expiry time.
        at_ns: Time,
    },
    /// A survivor re-deposited an expired lease's range for
    /// re-execution.
    Reclaim {
        /// Rank performing the reclamation.
        by: u32,
        /// Dead rank the range was leased to.
        owner: u32,
        /// Reclaimed range.
        lo: u64,
        /// One past the end of the reclaimed range.
        hi: u64,
        /// Reclaim time.
        at_ns: Time,
    },
    /// The fastest-rank-refill role failed over from a dead rank to
    /// the surviving ranks of the node.
    RefillFailover {
        /// Node whose refill stalled.
        node: u32,
        /// The dead refiller.
        from: u32,
        /// Failover time.
        at_ns: Time,
    },
    /// The FIFO ticket lock of a node window was revoked from a dead
    /// holder and repaired.
    LockRepair {
        /// Node whose window lock was repaired.
        node: u32,
        /// The dead holder.
        dead_holder: u32,
        /// Rank that performed the repair.
        by: u32,
        /// Repair time.
        at_ns: Time,
    },
}

impl RecoveryEvent {
    /// Timestamp of the event.
    pub fn at_ns(&self) -> Time {
        match *self {
            RecoveryEvent::Crash { at_ns, .. }
            | RecoveryEvent::LeaseExpired { at_ns, .. }
            | RecoveryEvent::Reclaim { at_ns, .. }
            | RecoveryEvent::RefillFailover { at_ns, .. }
            | RecoveryEvent::LockRepair { at_ns, .. } => at_ns,
        }
    }

    /// The rank a timeline should attribute the event to: the dead rank
    /// for crashes/expiries, the acting survivor for repairs.
    pub fn rank(&self) -> u32 {
        match *self {
            RecoveryEvent::Crash { rank, .. } => rank,
            RecoveryEvent::LeaseExpired { owner, .. } => owner,
            RecoveryEvent::Reclaim { by, .. } => by,
            RecoveryEvent::RefillFailover { from, .. } => from,
            RecoveryEvent::LockRepair { by, .. } => by,
        }
    }

    /// Short machine-friendly tag (used as the Perfetto event name).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryEvent::Crash { holding_lock: true, .. } => "crash-holding-lock",
            RecoveryEvent::Crash { .. } => "crash",
            RecoveryEvent::LeaseExpired { .. } => "lease-expired",
            RecoveryEvent::Reclaim { .. } => "reclaim",
            RecoveryEvent::RefillFailover { .. } => "refill-failover",
            RecoveryEvent::LockRepair { .. } => "lock-repair",
        }
    }
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RecoveryEvent::Crash { rank, at_ns, holding_lock } => {
                write!(
                    f,
                    "t={at_ns} rank {rank} crashed{}",
                    if holding_lock { " holding lock" } else { "" }
                )
            }
            RecoveryEvent::LeaseExpired { owner, lo, hi, at_ns } => {
                write!(f, "t={at_ns} lease {lo}..{hi} of dead rank {owner} expired")
            }
            RecoveryEvent::Reclaim { by, owner, lo, hi, at_ns } => {
                write!(f, "t={at_ns} rank {by} reclaimed {lo}..{hi} from dead rank {owner}")
            }
            RecoveryEvent::RefillFailover { node, from, at_ns } => {
                write!(f, "t={at_ns} node {node} refill role failed over from dead rank {from}")
            }
            RecoveryEvent::LockRepair { node, dead_holder, by, at_ns } => {
                write!(
                    f,
                    "t={at_ns} rank {by} revoked node {node} lock from dead rank {dead_holder}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            RecoveryEvent::Crash { rank: 1, at_ns: 10, holding_lock: false },
            RecoveryEvent::Crash { rank: 1, at_ns: 11, holding_lock: true },
            RecoveryEvent::LeaseExpired { owner: 1, lo: 0, hi: 4, at_ns: 20 },
            RecoveryEvent::Reclaim { by: 2, owner: 1, lo: 0, hi: 4, at_ns: 30 },
            RecoveryEvent::RefillFailover { node: 0, from: 1, at_ns: 40 },
            RecoveryEvent::LockRepair { node: 0, dead_holder: 1, by: 2, at_ns: 50 },
        ];
        let labels: Vec<&str> = events.iter().map(|e| e.label()).collect();
        assert_eq!(
            labels,
            [
                "crash",
                "crash-holding-lock",
                "lease-expired",
                "reclaim",
                "refill-failover",
                "lock-repair"
            ]
        );
        assert_eq!(
            events.iter().map(RecoveryEvent::at_ns).collect::<Vec<_>>(),
            [10, 11, 20, 30, 40, 50]
        );
        assert_eq!(events.iter().map(RecoveryEvent::rank).collect::<Vec<_>>(), [1, 1, 1, 2, 1, 2]);
        for e in &events {
            assert!(e.to_string().contains("t="));
        }
    }
}
