//! # resilience — fault injection and chunk-lease recovery
//!
//! The paper's hierarchical MPI+MPI scheme (arXiv:1903.09510)
//! deliberately has no master and no barriers: the fastest rank of a
//! node refills the node queue from a global queue that is nothing but
//! two RMA counters (arXiv:2101.07050). That economy is also a
//! liability — nothing in the protocol notices a crashed rank, so a
//! single failure can strand an in-flight chunk forever or leave the
//! shared-window lock held by a corpse.
//!
//! This crate supplies both halves of the answer:
//!
//! * [`plan`] — a deterministic, seeded [`FaultPlan`]: rank crashes at
//!   a virtual time (or after k sub-chunks for the real-thread
//!   executors), crash-while-holding-lock, straggler slowdown factors,
//!   and message delay/drop. Executors query the plan; they never roll
//!   their own dice, so every chaos run is reproducible.
//! * [`lease`] — the [`LeaseTable`]: chunk grants become revocable
//!   leases `(owner, range, epoch)` instead of irrevocable grants. A
//!   lease is completed by its owner or reclaimed exactly once by a
//!   survivor; double reclamation is a hard error.
//! * [`event`] — [`RecoveryEvent`]s (crash, lease expiry, reclaim,
//!   refill failover, lock repair) that executors append to their
//!   results so traces and reports can attribute who reclaimed what.
//!
//! The executors in `hier` consume these types; the end-to-end chaos
//! sweep in `tests/` closes the loop by checking every faulted run
//! against the exactly-once ledger from `dls::verify` / `rma-check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod event;
pub mod lease;
pub mod plan;

pub use event::RecoveryEvent;
pub use lease::{Lease, LeaseError, LeaseId, LeaseState, LeaseTable};
pub use plan::{Fault, FaultKind, FaultPlan, RecoveryParams};
