//! Chunk leases: revocable work grants.
//!
//! The paper's protocol treats a chunk grant as irrevocable — once the
//! global counters advance (or a sub-chunk is taken from the node
//! queue), the iterations belong to the grantee forever. Under
//! failures that is exactly wrong: a grant must be a *lease* that the
//! owner either completes or loses to a survivor. The [`LeaseTable`]
//! is the bookkeeping half of that idea; the windows carry the same
//! `(owner, range, epoch)` triple for the real-thread executors.
//!
//! The critical invariant is **single settlement**: a lease transitions
//! out of [`LeaseState::Active`] exactly once. Completing or reclaiming
//! a lease twice — the double-reclaim that would re-execute iterations —
//! is a [`LeaseError`], not a silent no-op, so executors cannot paper
//! over a race in the recovery path.

use cluster_sim::Time;

/// Identifier of a lease within one [`LeaseTable`] (dense, 0-based).
pub type LeaseId = u64;

/// Lifecycle state of a lease.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseState {
    /// Granted, not yet settled.
    Active,
    /// The owner finished the range.
    Completed,
    /// A survivor reclaimed the range after the owner died.
    Reclaimed {
        /// Rank that performed the reclamation.
        by: u32,
    },
}

/// One granted range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Identifier within the table.
    pub id: LeaseId,
    /// Rank the range was granted to.
    pub owner: u32,
    /// First iteration of the range.
    pub lo: u64,
    /// One past the last iteration.
    pub hi: u64,
    /// Virtual time of the grant.
    pub granted_ns: Time,
    /// Settlement state.
    pub state: LeaseState,
}

/// Misuse of the lease lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseError {
    /// The id was never granted.
    Unknown(LeaseId),
    /// Settling a lease that was already completed by its owner.
    AlreadyCompleted(LeaseId),
    /// Settling a lease that was already reclaimed — the double-reclaim
    /// that would duplicate work.
    AlreadyReclaimed {
        /// The offending lease.
        lease: LeaseId,
        /// Who reclaimed it first.
        by: u32,
    },
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Unknown(id) => write!(f, "lease {id} was never granted"),
            LeaseError::AlreadyCompleted(id) => write!(f, "lease {id} already completed"),
            LeaseError::AlreadyReclaimed { lease, by } => {
                write!(f, "lease {lease} already reclaimed by rank {by}")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// Table of all leases granted during one run.
#[derive(Clone, Debug, Default)]
pub struct LeaseTable {
    leases: Vec<Lease>,
}

impl LeaseTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a grant of `[lo, hi)` to `owner` at `now`.
    pub fn grant(&mut self, owner: u32, lo: u64, hi: u64, now: Time) -> LeaseId {
        debug_assert!(lo < hi, "empty lease [{lo}, {hi})");
        let id = self.leases.len() as LeaseId;
        self.leases.push(Lease { id, owner, lo, hi, granted_ns: now, state: LeaseState::Active });
        id
    }

    /// The owner finished the range.
    pub fn complete(&mut self, id: LeaseId) -> Result<(), LeaseError> {
        let lease = self.leases.get_mut(id as usize).ok_or(LeaseError::Unknown(id))?;
        match lease.state {
            LeaseState::Active => {
                lease.state = LeaseState::Completed;
                Ok(())
            }
            LeaseState::Completed => Err(LeaseError::AlreadyCompleted(id)),
            LeaseState::Reclaimed { by } => Err(LeaseError::AlreadyReclaimed { lease: id, by }),
        }
    }

    /// A survivor reclaims the range after the owner's death. Returns
    /// the range to re-execute. Reclaiming a settled lease is an error:
    /// recovery code must hold whatever mutual exclusion makes the
    /// first reclaim win before calling this.
    pub fn reclaim(&mut self, id: LeaseId, by: u32) -> Result<(u64, u64), LeaseError> {
        let lease = self.leases.get_mut(id as usize).ok_or(LeaseError::Unknown(id))?;
        match lease.state {
            LeaseState::Active => {
                lease.state = LeaseState::Reclaimed { by };
                Ok((lease.lo, lease.hi))
            }
            LeaseState::Completed => Err(LeaseError::AlreadyCompleted(id)),
            LeaseState::Reclaimed { by } => Err(LeaseError::AlreadyReclaimed { lease: id, by }),
        }
    }

    /// Look up a lease.
    pub fn get(&self, id: LeaseId) -> Option<&Lease> {
        self.leases.get(id as usize)
    }

    /// All leases still active (granted to `owner` if given).
    pub fn active(&self, owner: Option<u32>) -> impl Iterator<Item = &Lease> {
        self.leases
            .iter()
            .filter(move |l| l.state == LeaseState::Active && owner.is_none_or(|o| l.owner == o))
    }

    /// All leases in grant order (dense ids `0..len`).
    pub fn iter(&self) -> impl Iterator<Item = &Lease> {
        self.leases.iter()
    }

    /// Number of leases ever granted.
    pub fn len(&self) -> u64 {
        self.leases.len() as u64
    }

    /// True when no lease has been granted.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Append the ledger's canonical little-endian serialization to
    /// `out`: count, then per lease `owner, lo, hi, granted_ns, state`
    /// (state `0` active, `1` completed, `2` reclaimed followed by the
    /// reclaiming rank). Ids are dense so they are not stored.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.leases.len() as u64).to_le_bytes());
        for l in &self.leases {
            out.extend_from_slice(&l.owner.to_le_bytes());
            out.extend_from_slice(&l.lo.to_le_bytes());
            out.extend_from_slice(&l.hi.to_le_bytes());
            out.extend_from_slice(&l.granted_ns.to_le_bytes());
            match l.state {
                LeaseState::Active => out.push(0),
                LeaseState::Completed => out.push(1),
                LeaseState::Reclaimed { by } => {
                    out.push(2);
                    out.extend_from_slice(&by.to_le_bytes());
                }
            }
        }
    }

    /// Inverse of [`LeaseTable::serialize_into`]. Reads one ledger from
    /// the front of `bytes` and returns it with the number of bytes
    /// consumed, or `None` on truncated or malformed input.
    pub fn deserialize(bytes: &[u8]) -> Option<(Self, usize)> {
        fn u32_at(b: &[u8], off: &mut usize) -> Option<u32> {
            let s = b.get(*off..*off + 4)?;
            *off += 4;
            Some(u32::from_le_bytes(s.try_into().ok()?))
        }
        fn u64_at(b: &[u8], off: &mut usize) -> Option<u64> {
            let s = b.get(*off..*off + 8)?;
            *off += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        }
        let mut off = 0;
        let count = u64_at(bytes, &mut off)?;
        // A real ledger is bounded by what fits in the input; reject
        // counts the remaining bytes cannot possibly hold (25 bytes is
        // the smallest per-lease encoding).
        if count > (bytes.len() as u64 - off as u64) / 25 {
            return None;
        }
        let mut leases = Vec::with_capacity(count as usize);
        for id in 0..count {
            let owner = u32_at(bytes, &mut off)?;
            let lo = u64_at(bytes, &mut off)?;
            let hi = u64_at(bytes, &mut off)?;
            let granted_ns = u64_at(bytes, &mut off)?;
            let tag = *bytes.get(off)?;
            off += 1;
            let state = match tag {
                0 => LeaseState::Active,
                1 => LeaseState::Completed,
                2 => LeaseState::Reclaimed { by: u32_at(bytes, &mut off)? },
                _ => return None,
            };
            leases.push(Lease { id, owner, lo, hi, granted_ns, state });
        }
        Some((Self { leases }, off))
    }

    /// `(granted, completed, reclaimed)` totals.
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut completed = 0;
        let mut reclaimed = 0;
        for l in &self.leases {
            match l.state {
                LeaseState::Completed => completed += 1,
                LeaseState::Reclaimed { .. } => reclaimed += 1,
                LeaseState::Active => {}
            }
        }
        (self.leases.len() as u64, completed, reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_complete_lifecycle() {
        let mut t = LeaseTable::new();
        let id = t.grant(3, 10, 20, 100);
        assert_eq!(t.get(id).unwrap().state, LeaseState::Active);
        assert_eq!(t.active(Some(3)).count(), 1);
        t.complete(id).unwrap();
        assert_eq!(t.get(id).unwrap().state, LeaseState::Completed);
        assert_eq!(t.active(None).count(), 0);
        assert_eq!(t.counts(), (1, 1, 0));
    }

    #[test]
    fn reclaim_returns_range_once() {
        let mut t = LeaseTable::new();
        let id = t.grant(0, 5, 9, 0);
        assert_eq!(t.reclaim(id, 2), Ok((5, 9)));
        // Double reclaim is the bug this table exists to catch.
        assert_eq!(t.reclaim(id, 4), Err(LeaseError::AlreadyReclaimed { lease: id, by: 2 }));
        // And the dead owner cannot complete it post-mortem either.
        assert_eq!(t.complete(id), Err(LeaseError::AlreadyReclaimed { lease: id, by: 2 }));
    }

    #[test]
    fn completed_lease_cannot_be_reclaimed() {
        let mut t = LeaseTable::new();
        let id = t.grant(1, 0, 4, 0);
        t.complete(id).unwrap();
        assert_eq!(t.reclaim(id, 0), Err(LeaseError::AlreadyCompleted(id)));
        assert_eq!(t.complete(id), Err(LeaseError::AlreadyCompleted(id)));
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut t = LeaseTable::new();
        assert_eq!(t.complete(7), Err(LeaseError::Unknown(7)));
        assert_eq!(t.reclaim(7, 0), Err(LeaseError::Unknown(7)));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = LeaseTable::new();
        let a = t.grant(0, 0, 10, 5);
        let b = t.grant(1, 10, 25, 6);
        t.grant(2, 25, 30, 7);
        t.complete(a).unwrap();
        t.reclaim(b, 9).unwrap();
        let mut bytes = vec![0xAA]; // prefix noise: serialization must append
        t.serialize_into(&mut bytes);
        bytes.extend_from_slice(b"suffix");
        let (back, used) = LeaseTable::deserialize(&bytes[1..]).unwrap();
        assert_eq!(used, bytes.len() - 1 - 6);
        assert_eq!(back.len(), 3);
        for (orig, got) in t.iter().zip(back.iter()) {
            assert_eq!(orig, got);
        }
        assert_eq!(back.counts(), (3, 1, 1));
    }

    #[test]
    fn deserialize_rejects_truncation_and_bad_tags() {
        let mut t = LeaseTable::new();
        t.grant(0, 0, 4, 1);
        let mut bytes = Vec::new();
        t.serialize_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(LeaseTable::deserialize(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 9; // unknown state tag
        assert!(LeaseTable::deserialize(&bad).is_none());
        // Absurd count with no bytes behind it must not allocate/loop.
        assert!(LeaseTable::deserialize(&u64::MAX.to_le_bytes()).is_none());
    }

    #[test]
    fn errors_render() {
        assert!(LeaseError::AlreadyReclaimed { lease: 3, by: 1 }.to_string().contains("rank 1"));
        assert!(LeaseError::Unknown(9).to_string().contains('9'));
    }
}
