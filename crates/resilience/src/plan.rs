//! Deterministic, seeded fault plans.
//!
//! A [`FaultPlan`] is pure data: a list of [`Fault`]s plus the
//! [`RecoveryParams`] the survivors use to detect and repair them.
//! Executors *query* the plan (`crash_at`, `straggle_factor`, ...);
//! all nondeterminism lives in [`FaultPlan::seeded`], which expands a
//! `u64` seed into a concrete plan with splitmix64 — the same run with
//! the same seed always fails the same way.

use cluster_sim::Time;

/// Tunables for failure detection and repair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryParams {
    /// Virtual-time delay between a failure and its detection by a
    /// survivor (heartbeat staleness bound). Expired leases are
    /// reclaimed this long after the owner's death.
    pub lease_timeout_ns: Time,
    /// Bounded-grant timeout for the node-window lock: if a grant is
    /// not released within this bound the holder is presumed dead and
    /// the FIFO ticket lock is revoked/repaired.
    pub lock_grant_timeout_ns: Time,
    /// Real-thread executors have no virtual clock; a peer is presumed
    /// dead after this many consecutive polls observe a stale heartbeat
    /// (or failed `try_lock` attempts against a held lock).
    pub detect_polls: u32,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        Self { lease_timeout_ns: 50_000, lock_grant_timeout_ns: 25_000, detect_polls: 64 }
    }
}

/// One injected failure mode for one rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The rank dies. Virtual-time executors kill it at the first
    /// protocol step at or after `at_ns` (whatever it was doing —
    /// computing a sub-chunk, fetching from the global queue, carrying
    /// a chunk to deposit — is lost). Real-thread executors kill it
    /// right after it *takes* its `after_sub_chunks`-th sub-chunk,
    /// before executing it.
    Crash {
        /// Virtual-time trigger.
        at_ns: Time,
        /// Real-thread trigger: die after taking this many sub-chunks.
        after_sub_chunks: u32,
    },
    /// The rank dies inside the node-window critical section, still
    /// holding the exclusive lock. Triggered at the first lock
    /// acquisition at or after `at_ns` (sim) / after completing
    /// `after_sub_chunks` sub-chunks (live).
    CrashHoldingLock {
        /// Virtual-time trigger (first lock grant at/after this).
        at_ns: Time,
        /// Real-thread trigger.
        after_sub_chunks: u32,
    },
    /// Real-thread MPI+MPI: the rank wins the refiller role, performs
    /// the global fetch, publishes the fetched chunk to its lease
    /// slots, and dies before depositing it. (The virtual-time
    /// executors cover this role via `Crash` timing alone.)
    CrashAsRefiller {
        /// Die at the `after_global_fetches`-th global fetch (1-based).
        after_global_fetches: u32,
    },
    /// Straggler: the rank's compute cost is multiplied by `factor`
    /// from `from_ns` on (live executors apply it from the start).
    Straggle {
        /// Slowdown multiplier (≥ 1.0).
        factor: f64,
        /// Virtual time the slowdown begins.
        from_ns: Time,
    },
    /// Every message/RMA request this rank issues at or after `from_ns`
    /// takes `extra_ns` longer (virtual-time executors only).
    MessageDelay {
        /// Added one-way latency.
        extra_ns: Time,
        /// Virtual time the delay begins.
        from_ns: Time,
    },
    /// The first message this rank issues at or after `at_ns` is lost.
    /// The protocol survives by timeout-and-retry: the issuer re-sends
    /// after [`RecoveryParams::lease_timeout_ns`].
    MessageDrop {
        /// Virtual time after which the next message is dropped.
        at_ns: Time,
    },
}

/// A [`FaultKind`] bound to a global rank (worker index).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fault {
    /// Global worker/rank index the fault applies to.
    pub rank: u32,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic set of faults plus the recovery tunables.
///
/// The default plan is empty (`is_active() == false`); executors must
/// behave bit-identically to their fault-free selves under it.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Detection/repair tunables used by survivors.
    pub recovery: RecoveryParams,
    faults: Vec<Fault>,
}

/// splitmix64 — the same tiny deterministic generator the executors use
/// for jitter; good enough to scatter fault choices from a seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when at least one fault is injected.
    pub fn is_active(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Builder: add one fault.
    #[must_use]
    pub fn with(mut self, rank: u32, kind: FaultKind) -> Self {
        self.faults.push(Fault { rank, kind });
        self
    }

    /// Convenience: a single plain crash.
    pub fn crash(rank: u32, at_ns: Time) -> Self {
        Self::none().with(rank, FaultKind::Crash { at_ns, after_sub_chunks: 1 })
    }

    /// Convenience: a single straggler active from t=0.
    pub fn straggler(rank: u32, factor: f64) -> Self {
        Self::none().with(rank, FaultKind::Straggle { factor, from_ns: 0 })
    }

    /// Expand `seed` into a concrete plan for a cluster of `ranks`
    /// workers: always one crash (plain or holding-lock, chosen by the
    /// seed), plus — each with seed-dependent probability — one
    /// straggler and one message delay/drop on *other* ranks. All
    /// choices are pure functions of `seed`, so chaos runs replay.
    pub fn seeded(seed: u64, ranks: u32) -> Self {
        assert!(ranks > 0);
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc0de;
        let mut plan = Self::none();
        let crash_rank = (splitmix64(&mut s) % u64::from(ranks)) as u32;
        // Crash somewhere in the early-to-mid run: the queues still
        // hold work, so there is something to lose and reclaim.
        let at_ns = 20_000 + splitmix64(&mut s) % 180_000;
        let after_sub_chunks = 1 + (splitmix64(&mut s) % 4) as u32;
        let kind = if splitmix64(&mut s) % 3 == 0 {
            FaultKind::CrashHoldingLock { at_ns, after_sub_chunks }
        } else {
            FaultKind::Crash { at_ns, after_sub_chunks }
        };
        plan = plan.with(crash_rank, kind);
        if ranks > 1 && splitmix64(&mut s) % 2 == 0 {
            let mut r = (splitmix64(&mut s) % u64::from(ranks)) as u32;
            if r == crash_rank {
                r = (r + 1) % ranks;
            }
            let factor = 2.0 + (splitmix64(&mut s) % 5) as f64;
            plan = plan.with(r, FaultKind::Straggle { factor, from_ns: 0 });
        }
        if ranks > 1 && splitmix64(&mut s) % 3 == 0 {
            let mut r = (splitmix64(&mut s) % u64::from(ranks)) as u32;
            if r == crash_rank {
                r = (r + 1) % ranks;
            }
            let at = splitmix64(&mut s) % 100_000;
            let kind = if splitmix64(&mut s) % 2 == 0 {
                FaultKind::MessageDrop { at_ns: at }
            } else {
                FaultKind::MessageDelay { extra_ns: 2_000, from_ns: at }
            };
            plan = plan.with(r, kind);
        }
        plan
    }

    /// All faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Earliest plain-crash time for `rank`, if any.
    pub fn crash_at(&self, rank: u32) -> Option<Time> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::Crash { at_ns, .. } => Some(at_ns),
                _ => None,
            })
            .min()
    }

    /// Earliest crash-while-holding-lock time for `rank`, if any.
    pub fn crash_holding_lock_at(&self, rank: u32) -> Option<Time> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::CrashHoldingLock { at_ns, .. } => Some(at_ns),
                _ => None,
            })
            .min()
    }

    /// Real-thread plain-crash trigger: die after taking this many
    /// sub-chunks.
    pub fn crash_after_sub_chunks(&self, rank: u32) -> Option<u32> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::Crash { after_sub_chunks, .. } => Some(after_sub_chunks),
                _ => None,
            })
            .min()
    }

    /// Real-thread crash-holding-lock trigger.
    pub fn crash_holding_lock_after(&self, rank: u32) -> Option<u32> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::CrashHoldingLock { after_sub_chunks, .. } => Some(after_sub_chunks),
                _ => None,
            })
            .min()
    }

    /// Real-thread crash-as-refiller trigger (1-based fetch count).
    pub fn crash_as_refiller_after(&self, rank: u32) -> Option<u32> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::CrashAsRefiller { after_global_fetches } => Some(after_global_fetches),
                _ => None,
            })
            .min()
    }

    /// True if `rank` dies at some point under this plan (any crash
    /// variant).
    pub fn crashes(&self, rank: u32) -> bool {
        self.faults.iter().any(|f| {
            f.rank == rank
                && matches!(
                    f.kind,
                    FaultKind::Crash { .. }
                        | FaultKind::CrashHoldingLock { .. }
                        | FaultKind::CrashAsRefiller { .. }
                )
        })
    }

    /// Compute-cost multiplier for `rank` at virtual time `now`
    /// (product of all active straggler factors; `1.0` when healthy).
    pub fn straggle_factor(&self, rank: u32, now: Time) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::Straggle { factor, from_ns } if now >= from_ns => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Extra message latency for `rank` at virtual time `now`.
    pub fn message_delay(&self, rank: u32, now: Time) -> Time {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::MessageDelay { extra_ns, from_ns } if now >= from_ns => Some(extra_ns),
                _ => None,
            })
            .sum()
    }

    /// Virtual time at/after which `rank`'s next message is dropped
    /// (one message per `MessageDrop` fault; the executor tracks
    /// consumption).
    pub fn message_drop_at(&self, rank: u32) -> Option<Time> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .filter_map(|f| match f.kind {
                FaultKind::MessageDrop { at_ns } => Some(at_ns),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.crash_at(0), None);
        assert_eq!(p.straggle_factor(0, 1_000_000), 1.0);
        assert_eq!(p.message_delay(3, 99), 0);
    }

    #[test]
    fn queries_are_rank_and_time_scoped() {
        let p = FaultPlan::crash(2, 500)
            .with(1, FaultKind::Straggle { factor: 4.0, from_ns: 100 })
            .with(1, FaultKind::MessageDelay { extra_ns: 7, from_ns: 50 });
        assert_eq!(p.crash_at(2), Some(500));
        assert_eq!(p.crash_at(1), None);
        assert!(p.crashes(2));
        assert!(!p.crashes(1));
        assert_eq!(p.straggle_factor(1, 99), 1.0);
        assert_eq!(p.straggle_factor(1, 100), 4.0);
        assert_eq!(p.message_delay(1, 49), 0);
        assert_eq!(p.message_delay(1, 50), 7);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_always_crash_someone() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 6);
            let b = FaultPlan::seeded(seed, 6);
            assert_eq!(a, b);
            assert!(a.is_active());
            assert!(
                (0..6).any(|r| a.crashes(r)),
                "seed {seed} produced no crash: {:?}",
                a.faults()
            );
            // Straggler and crash never land on the same rank.
            for f in a.faults() {
                if let FaultKind::Straggle { factor, .. } = f.kind {
                    assert!(factor >= 2.0);
                    assert!(!a.crashes(f.rank));
                }
            }
        }
    }

    #[test]
    fn seeded_plans_vary_with_seed() {
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| format!("{:?}", FaultPlan::seeded(s, 6).faults())).collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn stragglers_multiply() {
        let p =
            FaultPlan::straggler(0, 2.0).with(0, FaultKind::Straggle { factor: 3.0, from_ns: 10 });
        assert_eq!(p.straggle_factor(0, 0), 2.0);
        assert_eq!(p.straggle_factor(0, 10), 6.0);
    }
}
