//! Adaptive weighted factoring (AWF) at the intra-node level: the
//! scheduler *learns* which workers are slow from measured rates and
//! shrinks their future sub-chunks — the adaptive extension the paper's
//! related-work section traces to Banicescu et al.
//!
//! ```text
//! cargo run --release --example awf_adaptive
//! ```

use dls::adaptive::AwfVariant;
use hdls::prelude::*;

fn main() {
    // A regular loop on an irregular *machine*: two workers per node
    // run 3x slower (e.g. thermally throttled cores).
    let workload = Synthetic::constant(400_000, 8_000);
    let table = CostTable::build(&workload);
    let slowdown: Vec<f64> = (0..16).map(|w| if w % 8 < 2 { 3.0 } else { 1.0 }).collect();

    // Fine-grained global chunks give the adaptive scheme rounds to
    // learn in.
    let inter = Technique::Fsc(dls::nonadaptive::FixedSizeChunking::with_chunk(4_000));

    println!("2 nodes x 8 workers; workers 0,1 of each node are 3x slower\n");
    println!("{:<22} {:>9} {:>24}", "intra-node scheduling", "time", "slow-worker iterations");

    let run = |label: &str, awf: Option<AwfVariant>| {
        let mut b = HierSchedule::builder()
            .inter_technique(inter)
            .intra(Kind::FAC2)
            .approach(Approach::MpiMpi)
            .nodes(2)
            .workers_per_node(8)
            .slowdown(slowdown.clone());
        if let Some(v) = awf {
            b = b.awf(v);
        }
        let r = b.build().simulate(&table);
        let slow: u64 = r
            .stats
            .workers
            .iter()
            .enumerate()
            .filter(|(w, _)| w % 8 < 2)
            .map(|(_, s)| s.iterations)
            .sum();
        println!("{label:<22} {:>8.3}s {:>24}", r.seconds(), slow / 4);
        r.seconds()
    };

    let plain = run("FAC2 (non-adaptive)", None);
    let mut best = plain;
    for v in AwfVariant::ALL {
        best = best.min(run(v.name(), Some(v)));
    }

    println!(
        "\nAWF converges the slow workers to their fair share (10000\n\
         iterations = 1/3 of a fast worker's 30000) instead of\n\
         overshooting, and trims the makespan by {:.1}% here. The gain is\n\
         modest because factoring's shrinking tail already self-corrects;\n\
         AWF's value grows with scheduling overhead and chunk coarseness.",
        (1.0 - best / plain) * 100.0
    );
}
