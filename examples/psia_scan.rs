//! PSIA: generate real spin images for a synthetic 3-D scene with the
//! hierarchical scheduler, verify the parallel result against a serial
//! run, and render one spin image.
//!
//! ```text
//! cargo run --release --example psia_scan
//! ```

use hdls::prelude::*;

fn main() {
    let psia = Psia::single_object();
    println!(
        "scene: {} oriented points, {}x{} spin images, bin size {}",
        psia.cloud().len(),
        psia.params().image_width,
        psia.params().image_width,
        psia.params().bin_size,
    );

    // Serial reference.
    let serial: u64 = (0..psia.n_iters()).map(|i| psia.execute(i)).sum();

    // Hierarchical parallel run (real threads, real kernel):
    // FAC2 across 2 nodes, GSS within each node.
    let schedule = HierSchedule::builder()
        .inter(Kind::FAC2)
        .intra(Kind::GSS)
        .approach(Approach::MpiMpi)
        .nodes(2)
        .workers_per_node(4)
        .build();
    let live = schedule.run_live(&psia);
    println!(
        "parallel checksum {:#x} — {}",
        live.checksum,
        if live.checksum == serial { "matches serial" } else { "MISMATCH" }
    );
    assert_eq!(live.checksum, serial);

    println!("\nper-worker spin images generated:");
    for (w, ws) in live.stats.workers.iter().enumerate() {
        println!("  worker {w}: {:>5} images in {:>3} sub-chunks", ws.iterations, ws.sub_chunks);
    }

    // Render the spin image of the densest point.
    let densest =
        (0..psia.n_iters()).max_by_key(|&i| psia.image(i).contributing).expect("non-empty scene");
    let img = psia.image(densest);
    println!("\nspin image of point {densest} ({} contributing points):", img.contributing);
    let max = img.bins.iter().cloned().fold(0.0f32, f32::max).max(1e-9);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    for row in 0..img.width {
        let line: String = (0..img.width)
            .map(|col| {
                let v = img.bins[row * img.width + col] / max;
                shades[((v * (shades.len() - 1) as f32).round() as usize).min(shades.len() - 1)]
            })
            .collect();
        println!("  |{line}|");
    }
}
