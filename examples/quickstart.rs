//! Quickstart: schedule an irregular loop hierarchically, both for real
//! (OS threads over the simulated MPI runtime) and in virtual time
//! (deterministic cluster model).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdls::prelude::*;

fn main() {
    // An irregular loop: 20k iterations, exponentially distributed
    // costs with a 50us mean.
    let workload = Synthetic::exponential(20_000, 50_000.0, 42);

    // GSS between nodes, STATIC within a node, the paper's proposed
    // MPI+MPI implementation, on a 4-node x 4-worker cluster.
    let schedule = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::STATIC)
        .approach(Approach::MpiMpi)
        .nodes(4)
        .workers_per_node(4)
        .build();

    // --- Run it for real: every rank is an OS thread, the local queue
    // is a shared window, the kernel actually executes. -----------------
    let live = schedule.run_live(&workload);
    println!("live run:");
    println!("  iterations executed : {}", live.stats.total_iterations);
    println!("  checksum            : {:#x}", live.checksum);
    let (min, max) = live.stats.iteration_spread();
    println!("  per-worker iterations: min {min}, max {max}");
    let fetches: u64 = live.stats.workers.iter().map(|w| w.global_fetches).sum();
    println!("  global chunk fetches : {fetches}");

    // --- Same schedule in virtual time: deterministic, models network
    // latency, window-lock contention and barriers. ----------------------
    let table = CostTable::build(&workload);
    let sim = schedule.simulate(&table);
    println!("\nvirtual-time run:");
    println!("  parallel loop time  : {:.6}s (virtual)", sim.seconds());
    println!("  iterations executed : {}", sim.stats.total_iterations);
    println!("  lock-poll penalty   : {}ns", sim.lock_poll_penalty);

    // --- Compare against the MPI+OpenMP baseline. -----------------------
    let baseline = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::STATIC)
        .approach(Approach::MpiOpenMp)
        .nodes(4)
        .workers_per_node(4)
        .build()
        .simulate(&table);
    println!("\nMPI+OpenMP baseline : {:.6}s (virtual)", baseline.seconds());
    println!(
        "MPI+MPI vs baseline : {:.2}x",
        baseline.seconds() / sim.seconds().max(f64::MIN_POSITIVE)
    );
}
