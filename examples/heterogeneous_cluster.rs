//! Systemic imbalance (failure injection): slow down some workers and
//! watch how each intra-node technique copes — dynamic techniques shift
//! iterations away from slow workers, STATIC cannot.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use hdls::prelude::*;

fn main() {
    // A perfectly regular loop: all imbalance here is *systemic*.
    let workload = Synthetic::constant(100_000, 50_000); // 50us per iteration
    let table = CostTable::build(&workload);

    // 2 nodes x 8 workers; one node's first two workers run 3x slower
    // (e.g. sharing their cores with another job).
    let mut slowdown = vec![1.0; 16];
    slowdown[0] = 3.0;
    slowdown[1] = 3.0;

    println!("2 nodes x 8 workers; workers 0 and 1 are 3x slower\n");
    println!(
        "{:<14} {:>10} {:>22} {:>14}",
        "intra-node", "time", "iters (slow workers)", "iters (median)"
    );
    for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
        let schedule = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(intra)
            .approach(Approach::MpiMpi)
            .nodes(2)
            .workers_per_node(8)
            .slowdown(slowdown.clone())
            .build();
        let r = schedule.simulate(&table);
        let mut iters: Vec<u64> = r.stats.workers.iter().map(|w| w.iterations).collect();
        let slow = iters[0] + iters[1];
        iters.sort_unstable();
        println!("{:<14} {:>9.2}s {:>22} {:>14}", intra.name(), r.seconds(), slow / 2, iters[8]);
    }

    println!(
        "\nDynamic intra-node techniques give the slow workers fewer\n\
         iterations and finish sooner; STATIC hands every worker an equal\n\
         share and waits for the stragglers."
    );
}
