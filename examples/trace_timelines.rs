//! Reproduce the paper's Figures 2 and 3 as timelines: the implicit
//! end-of-chunk synchronization of MPI+OpenMP vs. the wait-free MPI+MPI
//! execution, on one shared-memory node.
//!
//! ```text
//! cargo run --release --example trace_timelines [--svg DIR] [--export DIR]
//! ```
//!
//! With `--svg DIR`, also writes `figure2.svg` / `figure3.svg` and the
//! raw segment CSVs into `DIR`. With `--export DIR`, writes each run's
//! per-worker activity report (`figureN_activity.json`) and a
//! chrome://tracing event file (`figureN_chrome.json`) into `DIR`.

use hdls::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
    };
    let svg_dir = dir_after("--svg");
    let export_dir = dir_after("--export");
    // Mostly-cheap iterations with scattered expensive ones: under
    // schedule(static) some thread of every chunk draws the long straw
    // and the rest of the team waits at the implicit barrier.
    let workload = Synthetic::bimodal(6_000, 100_000, 8_000_000, 3, 11);
    let table = CostTable::build(&workload);

    for (fig, title, approach) in [
        (2, "Figure 2 — MPI+OpenMP: implicit synchronization at chunk ends", Approach::MpiOpenMp),
        (3, "Figure 3 — MPI+MPI: the fastest worker refills, nobody waits", Approach::MpiMpi),
    ] {
        // FAC2 at the (single-node) global level hands out a halving
        // sequence of chunks, so the intra level sees many worksharing
        // regions — the structure Figures 2/3 illustrate.
        let r = HierSchedule::builder()
            .inter(Kind::FAC2)
            .intra(Kind::STATIC)
            .approach(approach)
            .nodes(1)
            .workers_per_node(8)
            .trace(true)
            .build()
            .simulate(&table);
        let totals = r.trace.totals();
        println!("\n{title}");
        println!(
            "  t_end = {:.3}s | compute {:.3}s, scheduling {:.3}s, sync+idle {:.3}s",
            r.seconds(),
            cluster_sim::time::to_secs(totals.compute),
            cluster_sim::time::to_secs(totals.sched),
            cluster_sim::time::to_secs(totals.sync + totals.idle),
        );
        print!("{}", r.trace.gantt(8, 70));
        println!("  legend: '#' compute   's' obtain chunk   '.' wait/idle");
        if let Some(dir) = &svg_dir {
            std::fs::create_dir_all(dir).expect("create svg dir");
            let svg_path = dir.join(format!("figure{fig}.svg"));
            std::fs::write(&svg_path, r.trace.to_svg(8, 900)).expect("write svg");
            let csv_path = dir.join(format!("figure{fig}.csv"));
            std::fs::write(&csv_path, r.trace.to_csv()).expect("write csv");
            println!("  wrote {} and {}", svg_path.display(), csv_path.display());
        }
        if let Some(dir) = &export_dir {
            std::fs::create_dir_all(dir).expect("create export dir");
            let label = format!("FAC2+STATIC ({approach})");
            let report = ActivityReport::build(&label, &r.trace, &r.stats, 8);
            let json_path = dir.join(format!("figure{fig}_activity.json"));
            std::fs::write(&json_path, report.to_json()).expect("write activity json");
            let chrome_path = dir.join(format!("figure{fig}_chrome.json"));
            std::fs::write(&chrome_path, hdls::export::chrome_trace(&r.trace, 8))
                .expect("write chrome trace");
            println!(
                "  wrote {} and {} (compute c.o.v. {:.3})",
                json_path.display(),
                chrome_path.display(),
                report.compute_cov
            );
        }
    }
}
