//! Mandelbrot over a virtual cluster: sweep the paper's scheduling
//! combinations on a reduced Mandelbrot instance and print a comparison
//! table — a miniature of the paper's Figures 4-7.
//!
//! ```text
//! cargo run --release --example mandelbrot_cluster
//! ```

use hdls::prelude::*;
use workloads::Traversal;

fn main() {
    // A reduced boundary-zoom Mandelbrot (the full paper-scale instance
    // lives behind `Mandelbrot::paper()`; this one keeps the example
    // fast). The per-iteration virtual cost is scaled so the totals stay
    // in the paper's regime.
    let mandelbrot = Mandelbrot {
        width: 1024,
        height: 768,
        max_iter: 50_000,
        re: (-0.7485, -0.7445),
        im: (0.1290, 0.1330),
        ns_per_iter: 4_000,
        ns_base: 500,
        traversal: Traversal::TiledShuffle { tile: 48 },
    };
    println!("computing escape times for {} pixels...", mandelbrot.n_iters());
    let table = CostTable::build(&mandelbrot);
    let stats = table.stats();
    println!(
        "serial time {:.1}s (virtual), cost cov {:.2}\n",
        stats.total as f64 / 1e9,
        stats.cov()
    );

    println!("{:<14} {:>12} {:>12} {:>8}", "combination", "MPI+MPI", "MPI+OpenMP", "ratio");
    for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
        for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
            let spec = HierSpec::new(inter, intra);
            let run = |approach| {
                HierSchedule::builder()
                    .inter(inter)
                    .intra(intra)
                    .approach(approach)
                    .nodes(4)
                    .workers_per_node(16)
                    .build()
                    .simulate(&table)
                    .seconds()
            };
            let mm = run(Approach::MpiMpi);
            if spec.supported_by_openmp() {
                let mo = run(Approach::MpiOpenMp);
                println!("{:<14} {:>11.2}s {:>11.2}s {:>7.2}x", spec.label(), mm, mo, mo / mm);
            } else {
                println!("{:<14} {:>11.2}s {:>12} {:>8}", spec.label(), mm, "(n/a)", "-");
            }
        }
    }
    println!(
        "\n(n/a): the Intel OpenMP runtime only offers static/dynamic/guided,\n\
         so TSS/FAC2 at the intra-node level exist only under MPI+MPI —\n\
         one of the paper's arguments for the proposed approach."
    );
}
