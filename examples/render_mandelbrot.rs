//! Render the Mandelbrot workload to a PGM image, computing the pixels
//! through the hierarchical scheduler's real-thread backend and
//! verifying the parallel execution against serial, then writing the
//! escape-time image to disk.
//!
//! ```text
//! cargo run --release --example render_mandelbrot [out.pgm]
//! ```

use hdls::prelude::*;
use std::io::Write;

fn main() -> std::io::Result<()> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "mandelbrot.pgm".into());
    let mut m = Mandelbrot::quick();
    // Row-major traversal for a directly viewable image.
    m.traversal = workloads::Traversal::RowMajor;
    m.width = 512;
    m.height = 384;
    m.max_iter = 2_000;
    println!("computing {}x{} pixels on 2 nodes x 4 ranks...", m.width, m.height);

    // Parallel execution through the real-thread backend; checksum
    // verifies every pixel was computed exactly once.
    let schedule = HierSchedule::builder()
        .inter(Kind::FAC2)
        .intra(Kind::GSS)
        .approach(Approach::MpiMpi)
        .nodes(2)
        .workers_per_node(4)
        .build();
    let live = schedule.run_live(&m);
    let serial: u64 = (0..m.n_iters()).map(|i| m.execute(i)).sum();
    assert_eq!(live.checksum, serial, "parallel render must match serial");
    println!("checksum verified ({:#x})", live.checksum);

    // Write the escape-time image (log-scaled for contrast).
    let mut pgm = Vec::new();
    writeln!(pgm, "P5\n{} {}\n255", m.width, m.height)?;
    let scale = 255.0 / f64::from(m.max_iter).ln();
    for i in 0..m.n_iters() {
        let e = m.escape_iterations(i);
        let shade =
            if e >= m.max_iter { 0u8 } else { 255 - (f64::from(e.max(1)).ln() * scale) as u8 };
        pgm.push(shade);
    }
    std::fs::write(&out_path, &pgm)?;
    println!("wrote {out_path} ({} bytes)", pgm.len());
    Ok(())
}
