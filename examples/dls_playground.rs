//! DLS playground: print the chunk sequences, step counts and overhead
//! spectrum of every technique for a loop — the "DLS spectrum" the
//! paper's background section describes, as runnable output.
//!
//! ```text
//! cargo run --release --example dls_playground [N] [P]
//! ```

use dls::analysis::{overhead_spectrum, profile, step_bound};
use dls::sequence::ChunkSequence;
use dls::{Kind, LoopSpec, Technique};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let p: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let spec = LoopSpec::new(n, p).with_stats(1.0, 0.3).with_overhead(0.05);

    println!("loop: N = {n} iterations over P = {p} workers\n");

    for kind in Kind::ALL {
        let t = Technique::from_kind(kind);
        let sizes: Vec<u64> = ChunkSequence::new(&spec, &t).map(|c| c.len).collect();
        let shown = 12.min(sizes.len());
        let head: Vec<String> = sizes[..shown].iter().map(u64::to_string).collect();
        let ellipsis = if sizes.len() > shown { ", ..." } else { "" };
        println!("{kind:<7} [{}{}]", head.join(", "), ellipsis);
    }

    println!("\nscheduling-overhead spectrum (steps = chunks handed out):");
    println!("  {:<8} {:>7} {:>12} {:>12} {:>12}", "", "steps", "bound", "min chunk", "max chunk");
    for (kind, steps) in overhead_spectrum(&spec) {
        let prof = profile(&spec, &Technique::from_kind(kind));
        let bound = step_bound(kind, n, p).map(|b| b.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "  {:<8} {:>7} {:>12} {:>12} {:>12}",
            kind.name(),
            steps,
            bound,
            prof.min_chunk,
            prof.max_chunk
        );
    }

    println!(
        "\nWith a per-step overhead h, total scheduling cost is steps x h:\n\
         SS pays it N times, STATIC only P times — the trade-off every\n\
         technique above balances differently."
    );
}
