//! Chaos demo: inject rank crashes and stragglers into a hierarchical
//! schedule and watch the lease-based recovery protocol survive them —
//! lock repair, refill failover and exactly-once chunk reclamation,
//! with the full recovery timeline printed and makespans compared.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use hdls::prelude::*;

fn schedule_with(faults: FaultPlan) -> HierSchedule {
    HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::SS)
        .approach(Approach::MpiMpi)
        .nodes(2)
        .workers_per_node(4)
        .trace(true)
        .faults(faults)
        .build()
}

fn main() {
    // An irregular loop: 8k iterations, exponential costs, 50us mean.
    let workload = Synthetic::exponential(8_000, 50_000.0, 42);
    let table = CostTable::build(&workload);

    // --- Baseline: the fault-free run. ----------------------------------
    let clean = schedule_with(FaultPlan::none()).simulate(&table);
    println!("fault-free          : {:.6}s (virtual)", clean.seconds());
    assert_eq!(clean.stats.total_iterations, 8_000);

    // --- One rank dies mid-run. -----------------------------------------
    // Rank 5 crashes at t=20ms, whatever it is doing — possibly holding
    // its node's window lock or an undeposited global chunk. Survivors
    // repair the lock, fail the refill over and reclaim the lease.
    let crashed = schedule_with(FaultPlan::crash(5, 20_000_000)).simulate(&table);
    println!("1 crash (rank 5)    : {:.6}s (virtual)", crashed.seconds());
    assert_eq!(crashed.stats.total_iterations, 8_000, "no iteration may be lost");

    println!("\nrecovery timeline:");
    for e in &crashed.recovery {
        println!("  [{:>14}] {e}", e.label());
    }
    let reclaims: u64 = crashed.stats.workers.iter().map(|w| w.reclaims).sum();
    let repairs: u64 = crashed.stats.nodes.iter().map(|n| n.lock_revocations).sum();
    println!("\n  reclaims performed  : {reclaims}");
    println!("  locks repaired      : {repairs}");

    // The recovery events overlay the Perfetto timeline as instant
    // markers ("ph": "i") on the victim's and the reclaimer's tracks.
    // Pass a directory argument to write the trace for ui.perfetto.dev.
    let trace_json = chrome_trace_with_recovery(&crashed.trace, 4, &crashed.recovery);
    if let Some(dir) = std::env::args().nth(1) {
        let path = std::path::Path::new(&dir).join("chaos_trace.json");
        std::fs::write(&path, &trace_json).expect("write chrome trace");
        println!("  chrome trace        : {} (load in ui.perfetto.dev)", path.display());
    } else {
        println!("  chrome trace        : {} bytes (load in ui.perfetto.dev)", trace_json.len());
    }

    // --- One rank merely limps. -----------------------------------------
    // Rank 3 runs 8x slower from the start; dynamic self-scheduling
    // routes work around it, so the hit is far less than 8x.
    let limping = schedule_with(FaultPlan::straggler(3, 8.0)).simulate(&table);
    println!("\n1 straggler (8x)    : {:.6}s (virtual)", limping.seconds());
    assert_eq!(limping.stats.total_iterations, 8_000);

    // --- A seeded random plan: reproducible chaos. -----------------------
    let plan = FaultPlan::seeded(7, 8);
    let chaotic = schedule_with(plan.clone()).simulate(&table);
    println!(
        "seeded plan (seed 7): {:.6}s (virtual), {} faults, {} recovery events",
        chaotic.seconds(),
        plan.faults().len(),
        chaotic.recovery.len()
    );
    assert_eq!(chaotic.stats.total_iterations, 8_000);

    println!(
        "\ncrash overhead      : {:+.2}%",
        (crashed.seconds() / clean.seconds() - 1.0) * 100.0
    );
    println!("straggler overhead  : {:+.2}%", (limping.seconds() / clean.seconds() - 1.0) * 100.0);
}
