//! Reproduce the motivation for hierarchical DLS: the master-worker
//! execution models the paper's related work describes, side by side
//! with the paper's two hierarchical approaches.
//!
//! "For a large number of workers, the master may simultaneously
//! receive a large number [of] work requests, and ... the master
//! becomes a performance bottleneck." — Section 2.
//!
//! ```text
//! cargo run --release --example master_worker_bottleneck
//! ```

use hdls::prelude::*;

fn main() {
    // Fine-grained work amplifies request traffic: 200k cheap iterations.
    let workload = Synthetic::uniform(200_000, 1_000, 20_000, 17);
    let table = CostTable::build(&workload);
    println!(
        "workload: {} iterations, serial {:.2}s (virtual)\n",
        table.n_iters(),
        table.stats().total as f64 / 1e9
    );

    // Every model hands workers SS-granularity work (one iteration per
    // request — maximum balance, maximum request traffic); what differs
    // is *who* serves the requests.
    type ModelRunner = fn(&HierSchedule, &CostTable) -> f64;
    println!(
        "{:<36} {:>8} {:>8} {:>8} {:>8}",
        "who serves the SS requests", "2 nodes", "4 nodes", "8 nodes", "16 nodes"
    );
    let models: [(&str, ModelRunner); 4] = [
        ("one global master (flat, DLB)", |s, t| s.simulate_flat_master_worker(t).seconds()),
        ("per-node masters (HDSS)", |s, t| s.simulate_master_worker(t).seconds()),
        ("OpenMP dispatcher (MPI+OpenMP)", |s, t| s.simulate(t).seconds()),
        ("shared window queue (MPI+MPI)", |s, t| s.simulate(t).seconds()),
    ];
    for (i, (label, run)) in models.iter().enumerate() {
        print!("{label:<36}");
        for nodes in [2u32, 4, 8, 16] {
            let schedule = HierSchedule::builder()
                // Flat: SS straight from the global master. Hierarchical
                // models: GSS chunks to nodes, SS within the node.
                .inter(if i == 0 { Kind::SS } else { Kind::GSS })
                .intra(Kind::SS)
                .approach(if i == 2 { Approach::MpiOpenMp } else { Approach::MpiMpi })
                .nodes(nodes)
                .workers_per_node(16)
                .build();
            print!(" {:>7.3}s", run(&schedule, &table));
        }
        println!();
    }

    println!(
        "\nThe flat master serializes all 200k requests: its runtime barely\n\
         moves as nodes are added — the bottleneck that motivated\n\
         hierarchical DLS. Distributing the service (per-node masters,\n\
         OpenMP dispatch, or the paper's shared window queue) restores\n\
         scaling; among those, the window-lock path is the costliest per\n\
         request — the paper's Figure 4 SS observation."
    );
}
