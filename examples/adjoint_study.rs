//! Technique study on the adjoint-convolution benchmark (the classic
//! front-loaded workload of the DLS literature): which intra-node
//! technique copes best with a perfectly linear, decreasing cost
//! profile, and how the two approaches compare on it.
//!
//! ```text
//! cargo run --release --example adjoint_study
//! ```

use hdls::prelude::*;
use workloads::AdjointConvolution;

fn main() {
    let mut w = AdjointConvolution::new(60_000, 0xADC0);
    w.ns_per_mac = 12; // mean iteration ~360us at N = 60k
    let table = CostTable::build(&w);
    let stats = table.stats();
    println!(
        "adjoint convolution: N = {}, serial {:.1}s, max/mean = {:.2} (front-loaded)\n",
        table.n_iters(),
        stats.total as f64 / 1e9,
        stats.imbalance_factor()
    );

    // Verify the parallel kernel against serial once.
    let serial: u64 = (0..w.n_iters()).map(|i| w.execute(i)).sum();
    let live = HierSchedule::builder()
        .inter(Kind::FAC2)
        .intra(Kind::GSS)
        .nodes(2)
        .workers_per_node(3)
        .build()
        .run_live(&AdjointConvolution::new(600, 0xADC0));
    let small_serial: u64 = (0..600).map(|i| AdjointConvolution::new(600, 0xADC0).execute(i)).sum();
    assert_eq!(live.checksum, small_serial);
    let _ = serial;

    println!("{:<10} {:>12} {:>12} {:>10}", "intra", "MPI+MPI", "MPI+OpenMP", "ratio");
    for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
        let run = |approach| {
            HierSchedule::builder()
                .inter(Kind::GSS)
                .intra(intra)
                .approach(approach)
                .nodes(4)
                .workers_per_node(16)
                .build()
                .simulate(&table)
                .seconds()
        };
        let mm = run(Approach::MpiMpi);
        let spec = HierSpec::new(Kind::GSS, intra);
        if spec.supported_by_openmp() {
            let mo = run(Approach::MpiOpenMp);
            println!("{:<10} {:>11.3}s {:>11.3}s {:>9.2}x", intra.name(), mm, mo, mo / mm);
        } else {
            println!("{:<10} {:>11.3}s {:>12} {:>10}", intra.name(), mm, "(n/a)", "-");
        }
    }

    println!(
        "\nThe front-loaded ramp makes STATIC's first block nearly twice\n\
         the mean — factoring-family techniques (FAC2 first chunk = half\n\
         of GSS's) were designed for exactly this shape."
    );
}
