//! Scheduling as a service: workers pull chunks from a TCP server.
//!
//! Two ways to run it:
//!
//! ```text
//! # Self-contained (spawns its own server on a loopback port):
//! cargo run -p hdls --example net_workers
//!
//! # Against a long-running server, e.g. one started with
//! #   cargo run -p dls-service --bin dls-serverd -- --addr 127.0.0.1:7070
//! cargo run -p hdls --example net_workers -- 127.0.0.1:7070
//! ```
//!
//! Either way the example creates a GSS job, drives it with four
//! concurrent client connections (each fetching batches of chunks and
//! settling leases), verifies the union of their acknowledged work
//! reproduces the serial checksum exactly once, and prints the
//! server-side metrics through the same [`ActivityReport`] JSON
//! pipeline every in-process backend uses.
//!
//! For the same topology driven as *one* hierarchical program (node
//! agents over TCP, ranks on the shared window), see
//! [`HierSchedule::run_live_net`].

use hdls::dls_service::{drive_job_batched, Client, Server, ServiceConfig};
use hdls::prelude::*;

const N: u64 = 50_000;
const WORKERS: u32 = 4;
const BATCH: u32 = 8;

fn main() {
    // Self-host unless an external server address was given.
    let (server, addr) = match std::env::args().nth(1) {
        Some(addr) => (None, addr),
        None => {
            let s = Server::start(ServiceConfig::default(), "127.0.0.1:0")
                .expect("bind loopback server");
            let addr = s.addr().to_string();
            (Some(s), addr)
        }
    };
    println!("server: {addr}");

    let workload = Synthetic::uniform(N, 1, 100, 42);
    let serial: u64 = (0..N).map(|i| workload.execute(i)).sum();

    // One connection creates the job; every worker then joins it by id
    // over its own connection — exactly what separate processes would do.
    let job =
        Client::connect(&addr).expect("connect").create_job(N, Kind::GSS, &[]).expect("create job");
    println!("job {job}: n={N}, GSS, {WORKERS} workers, batch={BATCH}");

    let results: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let (addr, workload) = (&addr, &workload);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect worker");
                    drive_job_batched(&mut client, job, w, BATCH, &mut |i| workload.execute(i))
                        .expect("drive job")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut checksum = 0u64;
    for (w, (sum, iters, chunks)) in results.iter().enumerate() {
        println!("worker {w}: {iters} iterations over {chunks} chunks");
        checksum = checksum.wrapping_add(*sum);
    }
    assert_eq!(checksum, serial, "every iteration executed exactly once");
    println!("checksum {checksum} == serial: exactly-once over TCP");

    // Server-side view, through the standard report pipeline.
    let mut stats_conn = Client::connect(&addr).expect("connect");
    let snap = stats_conn.stats().expect("stats");
    let report = service_report("net_workers GSS", &snap);
    println!("{}", report.to_json());

    if let Some(server) = server {
        server.shutdown();
    }
}
