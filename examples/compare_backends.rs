//! Backend agreement check: run the same schedule on the real-thread
//! runtime and in virtual time, and compare the structural quantities
//! that must match (coverage, fetch discipline, deposits) next to the
//! ones that legitimately differ (interleavings, per-worker shares).
//!
//! ```text
//! cargo run --release --example compare_backends
//! ```

use hdls::prelude::*;

fn main() {
    let workload = Synthetic::exponential(30_000, 20_000.0, 99);
    let table = CostTable::build(&workload);
    let schedule = HierSchedule::builder()
        .inter(Kind::TSS)
        .intra(Kind::GSS)
        .approach(Approach::MpiMpi)
        .nodes(3)
        .workers_per_node(4)
        .record_chunks(true)
        .build();

    let sim = schedule.simulate(&table);
    let live = schedule.run_live(&workload);

    let fetches =
        |stats: &hier::RunStats| -> u64 { stats.workers.iter().map(|w| w.global_fetches).sum() };
    let deposits = |stats: &hier::RunStats| -> u64 { stats.nodes.iter().map(|n| n.deposits).sum() };

    println!("TSS+GSS on 3 nodes x 4 workers, N = 30000\n");
    println!("{:<28} {:>14} {:>14}", "", "virtual time", "real threads");
    println!(
        "{:<28} {:>14} {:>14}",
        "iterations executed", sim.stats.total_iterations, live.stats.total_iterations
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "global chunk fetches",
        fetches(&sim.stats),
        fetches(&live.stats)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "local-queue deposits",
        deposits(&sim.stats),
        deposits(&live.stats)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "sub-chunks dispatched",
        sim.stats.workers.iter().map(|w| w.sub_chunks).sum::<u64>(),
        live.stats.workers.iter().map(|w| w.sub_chunks).sum::<u64>()
    );
    let spread = |stats: &hier::RunStats| {
        let (min, max) = stats.iteration_spread();
        format!("{min}..{max}")
    };
    println!(
        "{:<28} {:>14} {:>14}",
        "per-worker iteration range",
        spread(&sim.stats),
        spread(&live.stats)
    );

    assert_eq!(sim.stats.total_iterations, live.stats.total_iterations);
    println!(
        "\nStructural quantities agree; interleavings and per-worker shares\n\
         differ because the virtual cluster is deterministic while the\n\
         real threads race on this machine's cores — that is exactly the\n\
         division of labour between the two backends."
    );
}
