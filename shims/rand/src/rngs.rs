//! Concrete generators: xoshiro256** (`StdRng`) and xoshiro256+ (`SmallRng`),
//! both seeded from a single `u64` via splitmix64.

use crate::{RngCore, SeedableRng};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seed_state(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)]
}

/// xoshiro256** — the workspace's deterministic default generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { s: seed_state(seed) }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// xoshiro256+ — nominally the "small, fast" generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { s: seed_state(seed) }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
