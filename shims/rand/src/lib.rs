//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `rand` 0.8 API it uses. Generators are
//! xoshiro256** seeded via splitmix64 — deterministic across platforms,
//! which is what the workloads crate relies on (`seed_from_u64` must
//! reproduce the same cost table everywhere). The streams differ from
//! upstream `rand`'s (`StdRng` there is ChaCha12); nothing in this
//! workspace depends on upstream's exact streams, only on determinism.

// A pure-std shim has no business holding unsafe code.
#![forbid(unsafe_code)]

pub mod rngs;

use std::ops::Range;

/// Seeding interface: the workspace only uses [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generation interface (subset of `rand::RngCore` + `rand::Rng`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore`; backs
/// [`Rng::gen`] for the types the workspace draws.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
