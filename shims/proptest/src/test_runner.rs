//! Deterministic case runner: per-test RNG, config, and case errors.

use rand::prelude::*;

/// Subset of upstream's `ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs; try another case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Seeded from the test's name via FNV-1a
/// so every test has a stable, independent stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { inner: StdRng::seed_from_u64(h) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}
