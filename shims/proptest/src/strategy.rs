//! Value-generation strategies: ranges, tuples, `Just`, `any`,
//! `prop_map`, and boxed unions for `prop_oneof!`.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest (value *trees* with shrinking), a strategy
/// here is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Regenerates until `pred` accepts, up to a bounded retry count.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence, pred }
    }

    /// Type-erases the strategy so heterogeneous strategies with a
    /// common value type can live in one collection (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed strategies — backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ---- Range strategies -------------------------------------------------

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- Tuple strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- `any` ------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values across a wide dynamic range.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(120) as i32) - 60;
        mag * 2f64.powi(exp)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}
