//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Anything usable as the size argument of [`vec`]: an exact length or
/// a half-open range of lengths.
pub trait SizeRange {
    /// Inclusive lower bound and exclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.min < self.max_exclusive, "empty vec size range");
        let span = (self.max_exclusive - self.min) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    VecStrategy { element, min, max_exclusive }
}
