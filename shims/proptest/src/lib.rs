//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing runner exposing the subset of
//! the `proptest` 1.x API its test suites use: the [`proptest!`] macro,
//! range/tuple/`Just`/`any`/collection/sample strategies with
//! `prop_map`, `prop_oneof!`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case is reported with its exact inputs
//!   but not minimised. Deterministic seeding (per-test-name) means the
//!   same failure reproduces on every run.
//! - **`.proptest-regressions` files are not replayed.** The stored
//!   seeds are opaque to this shim; failing cases found historically
//!   must also be pinned as explicit `#[test]` regressions (the dls
//!   crate does this for its committed seed).
//! - Generation is driven by a deterministic xoshiro-based RNG from the
//!   vendored `rand` shim, so test runs are reproducible everywhere.

// A pure-std shim has no business holding unsafe code.
#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError};

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Runs one property as `cases` generated test cases. Called by the
/// expansion of [`proptest!`]; not part of the public proptest API.
#[doc(hidden)]
pub fn run_property<F>(config: test_runner::Config, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), (test_runner::TestCaseError, String)>,
{
    let mut rng = test_runner::TestRng::for_test(name);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    // Allow a bounded number of rejects (prop_assume! failures) on top
    // of the requested case count, like upstream's max_global_rejects.
    let max_attempts = config.cases.saturating_mul(16).max(1024);
    while executed < config.cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err((test_runner::TestCaseError::Reject(_), _)) => {}
            Err((test_runner::TestCaseError::Fail(msg), inputs)) => {
                panic!(
                    "proptest case failed: {name}\n  inputs: {inputs}\n  {msg}\n  \
                     (deterministic per-test seed; rerun reproduces this case)"
                );
            }
        }
    }
}

/// The entry-point macro: a block of `#[test] fn name(arg in strategy, ...) { body }`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )+
                    s
                };
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                __result.map_err(|e| (e, __inputs))
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `(left != right)`\n  both: `{:?}`", l);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks one of several strategies (all yielding the same value type)
/// uniformly at random per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
