//! Sampling strategies: `prop::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks one element of a fixed list uniformly.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

/// `prop::sample::select(options)`: uniform choice from a non-empty list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option list");
    Select { options }
}
