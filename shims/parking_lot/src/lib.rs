//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `parking_lot` API it actually uses as a
//! thin wrapper over `std::sync`. Semantics match `parking_lot` where
//! the workspace relies on them:
//!
//! - `Mutex::lock` returns the guard directly (no `Result`); a poisoned
//!   std mutex is recovered via [`std::sync::PoisonError::into_inner`],
//!   mirroring `parking_lot`'s lack of poisoning.
//! - `Condvar::wait` takes `&mut MutexGuard` and reacquires the same
//!   mutex before returning, like `parking_lot`.

// A pure-std shim has no business holding unsafe code.
#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion primitive with `parking_lot`-style (non-poisoning)
/// `lock()` that returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The std guard is held in an `Option` so that [`Condvar::wait`] can
/// move it out and back in without unsafe code; it is `None` only for
/// the duration of a wait, during which the guard is not accessible.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard absent outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard absent outside wait")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Blocks until notified. The guard is atomically released while
    /// waiting and reacquired before this returns.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard absent outside wait");
        let reacquired = self.inner.wait(owned).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // parking_lot reports whether a thread was woken; std cannot.
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader-writer lock with `parking_lot`-style non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
