//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use, backed
//! by a plain wall-clock sampler: each benchmark is warmed up briefly,
//! then timed over a fixed number of samples, and a
//! `name  median  min..max` line is printed per benchmark. There are no
//! HTML reports, outlier statistics, or baseline comparisons.
//!
//! When a bench binary is invoked by `cargo test` (criterion's own
//! convention: a `--test` flag in the arguments), benchmarks execute a
//! single iteration as a smoke test, keeping `cargo test` fast.

// A pure-std shim has no business holding unsafe code.
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-benchmark timing driver handed to `iter` closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run until ~20ms have elapsed to settle caches.
        let warm_start = Instant::now();
        let mut batch = 1u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        // Choose a batch size so one sample takes roughly >= 1us.
        let probe = Instant::now();
        black_box(routine());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_micros(50).as_nanos() / one.as_nanos()).max(1) as u64;

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.results.push(t0.elapsed() / per_sample as u32);
        }
    }

    fn report(&mut self, name: &str) {
        if self.test_mode {
            println!("{name}: ok (test mode)");
            return;
        }
        self.results.sort();
        if self.results.is_empty() {
            println!("{name}: no samples");
            return;
        }
        let median = self.results[self.results.len() / 2];
        let min = self.results[0];
        let max = *self.results.last().unwrap();
        println!("{name:<48} median {median:>12?}   range {min:?}..{max:?}");
    }
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Throughput annotation — accepted and ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            test_mode: self.criterion.test_mode,
            results: Vec::new(),
        };
        f(&mut b, input);
        b.report(&full);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            test_mode: self.criterion.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30, test_mode: test_mode() }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: self.sample_size, test_mode: self.test_mode, results: Vec::new() };
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup { criterion: self, name }
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
