//! Integration tests for weighted (WF) and adaptive (AWF) scheduling at
//! the intra-node level — the extension techniques beyond the paper's
//! evaluated four, on both backends.

use dls::adaptive::AwfVariant;
use hdls::prelude::*;
use hier::live::serial_checksum;

#[test]
fn static_weights_scale_sub_chunk_sizes() {
    // Constant workload, WF intra, worker 0 weighted 2.5x: with equal
    // worker speeds any work-conserving scheme equalises *iterations*,
    // but the weighted worker must reach its share in clearly fewer,
    // larger sub-chunks.
    let w = Synthetic::constant(50_000, 50_000);
    let table = CostTable::build(&w);
    let mut weights = vec![1.0; 4];
    weights[0] = 2.5;
    let weights = dls::weighted::normalize_weights(&weights);
    let r = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::WF)
        .nodes(1)
        .workers_per_node(4)
        .weights(weights)
        .build()
        .simulate(&table);
    assert_eq!(r.stats.total_iterations, 50_000);
    let subs: Vec<u64> = r.stats.workers.iter().map(|w| w.sub_chunks).collect();
    let iters: Vec<u64> = r.stats.workers.iter().map(|w| w.iterations).collect();
    let avg_size = |i: usize| iters[i] as f64 / subs[i] as f64;
    assert!(
        avg_size(0) > 1.8 * avg_size(1),
        "weighted worker's sub-chunks should be ~2.2x larger: sizes {:?}",
        (avg_size(0), avg_size(1))
    );
}

#[test]
fn weights_match_speeds_bound_straggler_exposure() {
    // Workers 0/1 are 2x slower. A work-conserving dynamic tail lets
    // both weightings reach the same makespan on a constant workload,
    // but speed-matched weights must (a) never be slower and (b) cap
    // the *wall time of the slow workers' largest sub-chunk* — the
    // straggler exposure WF is designed to bound.
    let w = Synthetic::constant(100_000, 50_000);
    let table = CostTable::build(&w);
    let slowdown = vec![2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let run = |weights: Vec<f64>| {
        HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::WF)
            .nodes(1)
            .workers_per_node(8)
            .slowdown(slowdown.clone())
            .weights(weights)
            .record_chunks(true)
            .build()
            .simulate(&table)
    };
    let matched = run(dls::weighted::normalize_weights(&[0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]));
    let uniform = run(Vec::new());
    assert!(matched.seconds() <= uniform.seconds() * 1.001);
    let max_slow_sub = |r: &hier::sim::SimResult| {
        r.executed.iter().filter(|(w, _)| *w < 2).map(|(_, s)| s.len()).max().unwrap_or(0)
    };
    let m = max_slow_sub(&matched);
    let u = max_slow_sub(&uniform);
    assert!(
        m * 3 < u * 2,
        "matched weights should cap the slow workers' largest sub-chunk: {m} vs {u}"
    );
}

#[test]
fn awf_learns_slow_worker_in_sim() {
    for variant in AwfVariant::ALL {
        let w = Synthetic::constant(100_000, 50_000);
        let table = CostTable::build(&w);
        let r = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::FAC2)
            .nodes(1)
            .workers_per_node(4)
            .awf(variant)
            .slowdown(vec![4.0, 1.0, 1.0, 1.0])
            .build()
            .simulate(&table);
        assert_eq!(r.stats.total_iterations, 100_000, "{}", variant.name());
        let iters: Vec<u64> = r.stats.workers.iter().map(|w| w.iterations).collect();
        assert!(
            iters[0] * 2 < iters[1],
            "{}: AWF should starve the 4x-slower worker: {iters:?}",
            variant.name()
        );
    }
}

#[test]
fn awf_beats_plain_fac2_under_systemic_imbalance() {
    // Fine-grained global chunks (FSC inter with an explicit chunk
    // size) give AWF many scheduling rounds to learn in; a 4x-slow
    // worker then stops straggling the node. With one giant chunk the
    // cold-start sub-chunk would bind both variants equally — AWF's
    // documented warm-up limitation.
    let w = Synthetic::constant(100_000, 50_000);
    let table = CostTable::build(&w);
    let inter = Technique::Fsc(dls::nonadaptive::FixedSizeChunking::with_chunk(2_000));
    let run = |awf: Option<AwfVariant>| {
        let mut b = HierSchedule::builder()
            .inter_technique(inter)
            .intra(Kind::FAC2)
            .nodes(2)
            .workers_per_node(8)
            .slowdown((0..16).map(|i| if i % 8 == 0 { 4.0 } else { 1.0 }).collect());
        if let Some(v) = awf {
            b = b.awf(v);
        }
        b.build().simulate(&table).seconds()
    };
    let plain = run(None);
    let adaptive = run(Some(AwfVariant::C));
    assert!(
        adaptive < plain,
        "AWF ({adaptive:.4}s) should beat plain FAC2 ({plain:.4}s) with slow workers"
    );
}

#[test]
fn awf_live_exactly_once() {
    let w = Synthetic::uniform(2_000, 10, 100, 6);
    let serial = serial_checksum(&w);
    for variant in [AwfVariant::B, AwfVariant::C] {
        let r = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::FAC2)
            .nodes(2)
            .workers_per_node(3)
            .awf(variant)
            .build()
            .run_live(&w);
        assert_eq!(r.checksum, serial, "{}", variant.name());
        assert_eq!(r.stats.total_iterations, 2_000);
    }
}

#[test]
fn wf_live_exactly_once_with_weights() {
    let w = Synthetic::uniform(1_500, 10, 100, 2);
    let serial = serial_checksum(&w);
    let mut cfg =
        hier::live::LiveConfig::new(2, 3, HierSpec::new(Kind::GSS, Kind::WF), Approach::MpiMpi);
    cfg.weights = dls::weighted::normalize_weights(&[2.0, 1.0, 0.5, 2.0, 1.0, 0.5]);
    let r = hier::live::run_live(&cfg, &w).expect("live run");
    assert_eq!(r.checksum, serial);
}
