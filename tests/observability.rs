//! End-to-end checks of the observability layer: traces and lock
//! counters must carry the signal the paper reads off Figures 2-4 —
//! self-scheduling at the intra-node level under MPI+MPI pays for its
//! per-iteration lock traffic, and the virtual-time traces that show it
//! are deterministic.

use hdls::prelude::*;

fn workload_table() -> CostTable {
    CostTable::build(&Synthetic::uniform(20_000, 1_000, 50_000, 3))
}

fn sim(intra: Kind, table: &CostTable) -> SimResult {
    HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(intra)
        .approach(Approach::MpiMpi)
        .nodes(2)
        .workers_per_node(8)
        .trace(true)
        .build()
        .simulate(table)
}

fn total_lock_polls(r: &SimResult) -> u64 {
    r.stats.nodes.iter().map(|n| n.lock_polls).sum()
}

#[test]
fn intra_ss_pays_more_sched_time_and_lock_polls_than_static() {
    let table = workload_table();
    let ss = sim(Kind::SS, &table);
    let st = sim(Kind::STATIC, &table);
    assert!(
        ss.trace.totals().sched > st.trace.totals().sched,
        "per-iteration self-scheduling must record strictly more Sched \
         time than one STATIC split ({} vs {})",
        ss.trace.totals().sched,
        st.trace.totals().sched
    );
    assert!(
        total_lock_polls(&ss) > total_lock_polls(&st),
        "SS must generate more failed lock polls than STATIC"
    );
}

#[test]
fn intra_ss_records_the_highest_lock_poll_count() {
    let table = workload_table();
    let polls: Vec<(Kind, u64)> = [Kind::STATIC, Kind::SS, Kind::GSS]
        .into_iter()
        .map(|k| (k, total_lock_polls(&sim(k, &table))))
        .collect();
    let ss = polls.iter().find(|(k, _)| *k == Kind::SS).unwrap().1;
    for (k, p) in &polls {
        if *k != Kind::SS {
            assert!(ss > *p, "intra-SS must poll the local lock most (SS {ss} vs {k} {p})");
        }
    }
}

#[test]
fn identical_sim_runs_produce_identical_traces() {
    let table = workload_table();
    let a = sim(Kind::SS, &table);
    let b = sim(Kind::SS, &table);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.trace.segments(), b.trace.segments());
    for (na, nb) in a.stats.nodes.iter().zip(&b.stats.nodes) {
        assert_eq!(na.lock_polls, nb.lock_polls);
        assert_eq!(na.lock_acquisitions, nb.lock_acquisitions);
    }
}

#[test]
fn activity_report_reflects_the_simulated_run() {
    let table = workload_table();
    let r = sim(Kind::SS, &table);
    let report = ActivityReport::build("GSS+SS (MPI+MPI)", &r.trace, &r.stats, 16);
    assert_eq!(report.workers.len(), 16);
    assert_eq!(report.nodes.len(), 2);
    assert_eq!(report.makespan_ns, r.trace.makespan());
    assert!(report.compute_cov >= 0.0);
    // Every worker computed something, and no worker's activity can
    // exceed the run's makespan.
    for w in &report.workers {
        assert!(w.totals.compute > 0, "worker {} never computed", w.worker);
        assert!(w.totals.total() <= report.makespan_ns);
    }
    let buckets: u64 = report.lock_poll_histogram.iter().sum();
    assert_eq!(buckets, 16, "each worker lands in exactly one bucket");
    let json = report.to_json();
    assert!(json.contains("\"label\": \"GSS+SS (MPI+MPI)\""));
    let chrome = chrome_trace(&r.trace, 8);
    assert_eq!(chrome.matches("\"ph\": \"X\"").count(), r.trace.segments().len());
}

#[test]
fn live_trace_flag_flows_through_the_builder() {
    let w = Synthetic::uniform(600, 1, 100, 3);
    for approach in [Approach::MpiMpi, Approach::MpiOpenMp] {
        let r = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::SS)
            .approach(approach)
            .nodes(2)
            .workers_per_node(3)
            .trace(true)
            .build()
            .run_live(&w);
        assert!(
            !r.trace.segments().is_empty(),
            "{approach}: builder trace(true) must reach the live backend"
        );
        assert!(r.trace.totals().compute > 0);
    }
}
