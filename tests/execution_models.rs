//! Cross-model integration tests: the four execution models (flat
//! master-worker, hierarchical master-worker, MPI+OpenMP, MPI+MPI) and
//! the two global-queue realisations must all compute the same loop,
//! and their relative costs must tell the story the paper's related
//! work describes.

use hdls::prelude::*;
use hier::live::serial_checksum;
use hier::GlobalQueueMode;

fn schedule(nodes: u32, wpn: u32) -> HierSchedule {
    HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::GSS)
        .nodes(nodes)
        .workers_per_node(wpn)
        .build()
}

#[test]
fn all_execution_models_agree_live() {
    let w = Synthetic::uniform(1_200, 1, 60, 21);
    let serial = serial_checksum(&w);
    let s = schedule(2, 3);
    assert_eq!(s.run_live(&w).checksum, serial, "MPI+MPI");
    assert_eq!(s.run_live_master_worker(&w).checksum, serial, "hierarchical MW");
    assert_eq!(s.run_live_flat_master_worker(&w).checksum, serial, "flat MW");
    let omp = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::GSS)
        .approach(Approach::MpiOpenMp)
        .nodes(2)
        .workers_per_node(3)
        .build();
    assert_eq!(omp.run_live(&w).checksum, serial, "MPI+OpenMP");
}

#[test]
fn all_execution_models_agree_sim() {
    let w = Synthetic::uniform(3_000, 50, 600, 22);
    let table = CostTable::build(&w);
    let s = schedule(3, 4);
    assert_eq!(s.simulate(&table).stats.total_iterations, 3_000);
    assert_eq!(s.simulate_master_worker(&table).stats.total_iterations, 3_000);
    assert_eq!(s.simulate_flat_master_worker(&table).stats.total_iterations, 3_000);
}

#[test]
fn global_queue_modes_agree_live() {
    let w = Synthetic::uniform(900, 1, 40, 23);
    let serial = serial_checksum(&w);
    for mode in [GlobalQueueMode::SingleAtomic, GlobalQueueMode::LockedCounters] {
        let r = HierSchedule::builder()
            .inter(Kind::FAC2)
            .intra(Kind::SS)
            .nodes(2)
            .workers_per_node(3)
            .global_queue(mode)
            .build()
            .run_live(&w);
        assert_eq!(r.checksum, serial, "{mode:?}");
    }
}

#[test]
fn locked_counters_cost_more_in_sim() {
    // Each locked fetch pays two extra round trips, so with many global
    // rounds the locked variant can only be slower (or equal).
    let w = Synthetic::uniform(20_000, 500, 5_000, 24);
    let table = CostTable::build(&w);
    let run = |mode| {
        HierSchedule::builder()
            .inter(Kind::FAC2)
            .intra(Kind::GSS)
            .nodes(4)
            .workers_per_node(4)
            .global_queue(mode)
            .build()
            .simulate(&table)
            .makespan
    };
    let atomic = run(GlobalQueueMode::SingleAtomic);
    let locked = run(GlobalQueueMode::LockedCounters);
    assert!(locked >= atomic, "locked {locked} < atomic {atomic}");
}

#[test]
fn flat_master_slowest_on_fine_grained_work() {
    // The paper's motivation, as a regression test.
    let w = Synthetic::constant(50_000, 2_000);
    let table = CostTable::build(&w);
    let s = HierSchedule::builder()
        .inter(Kind::SS)
        .intra(Kind::SS)
        .nodes(8)
        .workers_per_node(8)
        .build();
    let flat = s.simulate_flat_master_worker(&table).makespan;
    let s2 = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::SS)
        .nodes(8)
        .workers_per_node(8)
        .build();
    let hier_mw = s2.simulate_master_worker(&table).makespan;
    assert!(flat > hier_mw, "flat {flat} must exceed hierarchical {hier_mw}");
}

#[test]
fn dedicated_masters_do_not_execute_iterations() {
    let w = Synthetic::constant(2_000, 100);
    let table = CostTable::build(&w);
    let s = schedule(2, 4);
    let live = s.run_live_flat_master_worker(&w);
    assert_eq!(live.stats.workers[0].iterations, 0);
    // In the sim, master-worker masters are modelled as extra entities,
    // so every listed worker computes.
    let sim = s.simulate_master_worker(&table);
    assert!(sim.stats.workers.iter().all(|w| w.iterations > 0));
}
