//! Backend agreement: the real-thread executor and the virtual-time
//! executor implement the *same protocols*, so structural quantities —
//! iterations executed, exactly-once coverage, who is allowed to fetch
//! from the global queue, which techniques OpenMP supports — must
//! agree. (Timing-dependent quantities like chunk interleavings
//! legitimately differ.)

use dls::verify::check_exactly_once;
use hdls::prelude::*;

fn schedule(inter: Kind, intra: Kind, approach: Approach) -> HierSchedule {
    HierSchedule::builder()
        .inter(inter)
        .intra(intra)
        .approach(approach)
        .nodes(2)
        .workers_per_node(3)
        .record_chunks(true)
        .build()
}

fn coverage(chunks: &[(u32, hier::queue::SubChunk)], n: u64) {
    let as_chunks: Vec<dls::Chunk> =
        chunks.iter().map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 }).collect();
    check_exactly_once(&as_chunks, n).expect("exactly-once coverage");
}

#[test]
fn both_backends_cover_exactly_once() {
    let w = Synthetic::uniform(1_000, 10, 200, 4);
    let table = CostTable::build(&w);
    for approach in Approach::ALL {
        for (inter, intra) in [(Kind::GSS, Kind::STATIC), (Kind::FAC2, Kind::SS)] {
            let s = schedule(inter, intra, approach);
            let sim = s.simulate(&table);
            coverage(&sim.executed, w.n_iters());
            let live = s.run_live(&w);
            coverage(&live.executed, w.n_iters());
            assert_eq!(sim.stats.total_iterations, live.stats.total_iterations);
        }
    }
}

#[test]
fn net_backend_agrees_with_live_rma_for_all_pairs() {
    // The fifth backend replaces the RMA global queue with the TCP
    // service; the schedule it produces must keep every structural
    // invariant of the in-process MPI+MPI executor for *every*
    // {STATIC, SS, GSS, TSS, FAC2}^2 combination: exactly-once
    // coverage, the serial checksum, total iterations, and deposits ==
    // global fetches (one deposit per chunk crossing the wire).
    const KINDS: [Kind; 5] = [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2];
    let w = Synthetic::uniform(400, 1, 100, 4);
    for inter in KINDS {
        for intra in KINDS {
            let s = schedule(inter, intra, Approach::MpiMpi);
            let live = s.run_live(&w);
            let (net, snap) = s.run_live_net(&w);
            let pair = format!("{inter:?}+{intra:?}");
            coverage(&net.executed, w.n_iters());
            assert_eq!(net.checksum, live.checksum, "{pair} checksum");
            assert_eq!(
                net.stats.total_iterations, live.stats.total_iterations,
                "{pair} iterations"
            );
            let fetches: u64 = net.stats.workers.iter().map(|w| w.global_fetches).sum();
            let deposits: u64 = net.stats.nodes.iter().map(|n| n.deposits).sum();
            assert_eq!(fetches, deposits, "{pair} deposit discipline");
            // The server's ledger saw the same run: job complete, every
            // lease settled by its owner, chunks granted == deposits.
            let job = &snap.jobs[0];
            assert!(job.done, "{pair} job finished");
            assert_eq!(job.completed, w.n_iters(), "{pair} server-side completion");
            assert_eq!(job.leases_granted, job.leases_completed, "{pair} ledger");
            assert_eq!(job.chunks_granted, deposits, "{pair} grants == deposits");
        }
    }
}

#[test]
fn adaptive_inter_kinds_agree_over_tcp() {
    // The measurement-driven kinds (AF, the AWF variants, and the
    // self-switching AUTO mode) size inter chunks from observed
    // latencies, so their chunk *boundaries* legitimately differ from
    // any fixed technique and from run to run. Every timing-independent
    // quantity must still agree with the RMA executor: the serial
    // checksum, exactly-once coverage, total iterations, the
    // deposit-per-fetch discipline, and a fully settled server ledger.
    let w = Synthetic::uniform(400, 1, 100, 4);
    let live = schedule(Kind::GSS, Kind::SS, Approach::MpiMpi).run_live(&w);
    let adaptive = dls::SchedKind::ADAPTIVE.into_iter().chain([dls::SchedKind::Auto]);
    for kind in adaptive {
        let s = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::SS)
            .approach(Approach::MpiMpi)
            .nodes(2)
            .workers_per_node(3)
            .record_chunks(true)
            .net_inter(kind)
            .build();
        let (net, snap) = s.run_live_net(&w);
        let label = kind.name();
        coverage(&net.executed, w.n_iters());
        assert_eq!(net.checksum, live.checksum, "{label} checksum");
        assert_eq!(net.stats.total_iterations, live.stats.total_iterations, "{label} iterations");
        let fetches: u64 = net.stats.workers.iter().map(|w| w.global_fetches).sum();
        let deposits: u64 = net.stats.nodes.iter().map(|n| n.deposits).sum();
        assert_eq!(fetches, deposits, "{label} deposit discipline");
        let job = &snap.jobs[0];
        assert!(job.done, "{label} job finished");
        assert_eq!(job.completed, w.n_iters(), "{label} server-side completion");
        assert_eq!(job.leases_granted, job.leases_completed, "{label} ledger");
        assert_eq!(job.chunks_granted, deposits, "{label} grants == deposits");
        // The snapshot reports the mode the job was created with; only
        // AUTO may accrete switch decisions.
        assert_eq!(job.mode, Some(kind), "{label} mode");
        if kind != dls::SchedKind::Auto {
            assert!(job.decisions.is_empty(), "{label} must not switch");
            assert_eq!(job.kind, Some(kind), "{label} active kind");
        }
    }
}

#[test]
fn static_static_produces_identical_partitions() {
    // Fully static scheduling is timing-independent: both backends must
    // produce the *same* sub-chunk boundaries.
    let w = Synthetic::constant(960, 100);
    let table = CostTable::build(&w);
    let s = schedule(Kind::STATIC, Kind::STATIC, Approach::MpiMpi);
    let sim = s.simulate(&table);
    let live = s.run_live(&w);
    let norm = |mut v: Vec<(u32, hier::queue::SubChunk)>| {
        v.sort_by_key(|(_, s)| s.start);
        v.into_iter().map(|(_, s)| (s.start, s.end)).collect::<Vec<_>>()
    };
    assert_eq!(norm(sim.executed), norm(live.executed));
}

#[test]
fn global_fetch_discipline_matches() {
    // Under MPI+OpenMP only node masters fetch; under MPI+MPI any rank
    // may. Both backends must agree on that discipline.
    let w = Synthetic::uniform(2_000, 10, 100, 8);
    let table = CostTable::build(&w);
    let check = |stats: &hier::RunStats, approach: Approach| {
        for (i, ws) in stats.workers.iter().enumerate() {
            if approach == Approach::MpiOpenMp && i % 3 != 0 {
                assert_eq!(ws.global_fetches, 0, "{approach} worker {i}");
            }
        }
        let total: u64 = stats.workers.iter().map(|w| w.global_fetches).sum();
        assert!(total > 0);
    };
    for approach in Approach::ALL {
        let s = schedule(Kind::GSS, Kind::GSS, approach);
        check(&s.simulate(&table).stats, approach);
        check(&s.run_live(&w).stats, approach);
    }
}

#[test]
fn deposits_equal_global_fetches_everywhere() {
    let w = Synthetic::uniform(3_000, 5, 80, 2);
    let table = CostTable::build(&w);
    for approach in Approach::ALL {
        let s = schedule(Kind::TSS, Kind::GSS, approach);
        for stats in [s.simulate(&table).stats, s.run_live(&w).stats] {
            let fetches: u64 = stats.workers.iter().map(|w| w.global_fetches).sum();
            let deposits: u64 = stats.nodes.iter().map(|n| n.deposits).sum();
            assert_eq!(fetches, deposits, "{approach}");
        }
    }
}
