//! Cross-crate integration tests: the full public API driving real
//! workloads on the real-thread backend, verified against serial
//! execution.

use hdls::prelude::*;
use hier::live::serial_checksum;

fn live(
    inter: Kind,
    intra: Kind,
    approach: Approach,
    nodes: u32,
    wpn: u32,
    w: &(dyn Workload + Sync),
) -> LiveResult {
    HierSchedule::builder()
        .inter(inter)
        .intra(intra)
        .approach(approach)
        .nodes(nodes)
        .workers_per_node(wpn)
        .build()
        .run_live(w)
}

#[test]
fn mandelbrot_parallel_equals_serial() {
    let m = Mandelbrot::tiny();
    let serial = serial_checksum(&m);
    for approach in Approach::ALL {
        let r = live(Kind::GSS, Kind::GSS, approach, 2, 3, &m);
        assert_eq!(r.checksum, serial, "{approach}");
        assert_eq!(r.stats.total_iterations, m.n_iters());
    }
}

#[test]
fn psia_parallel_equals_serial() {
    let p = Psia::tiny();
    let serial = serial_checksum(&p);
    for approach in Approach::ALL {
        let r = live(Kind::FAC2, Kind::STATIC, approach, 2, 2, &p);
        assert_eq!(r.checksum, serial, "{approach}");
    }
}

#[test]
fn every_paper_combination_live_mpi_mpi() {
    let w = Synthetic::uniform(400, 1, 50, 9);
    let serial = serial_checksum(&w);
    for inter in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
        for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
            let r = live(inter, intra, Approach::MpiMpi, 2, 2, &w);
            assert_eq!(r.checksum, serial, "{inter}+{intra}");
        }
    }
}

#[test]
fn extended_techniques_live() {
    // Techniques beyond the paper's four also schedule correctly at
    // both levels.
    let w = Synthetic::exponential(500, 40.0, 3);
    let serial = serial_checksum(&w);
    for kind in [Kind::TFSS, Kind::FSC, Kind::RND, Kind::WF, Kind::FAC] {
        let r = live(kind, kind, Approach::MpiMpi, 2, 3, &w);
        assert_eq!(r.checksum, serial, "{kind}");
    }
}

#[test]
fn mpi_openmp_only_masters_touch_mpi() {
    let w = Synthetic::constant(800, 10);
    let r = live(Kind::GSS, Kind::GSS, Approach::MpiOpenMp, 2, 4, &w);
    for (i, ws) in r.stats.workers.iter().enumerate() {
        if i % 4 != 0 {
            assert_eq!(ws.global_fetches, 0, "worker {i}");
        }
    }
}

#[test]
fn psia_stream_covers_frames() {
    let s = workloads::PsiaStream::new(Psia::tiny(), 3, 0.1);
    let serial = serial_checksum(&s);
    let r = live(Kind::GSS, Kind::SS, Approach::MpiMpi, 2, 2, &s);
    assert_eq!(r.checksum, serial);
    assert_eq!(r.stats.total_iterations, s.n_iters());
}

#[test]
fn single_iteration_loop() {
    let w = Synthetic::constant(1, 5);
    for approach in Approach::ALL {
        let r = live(Kind::GSS, Kind::GSS, approach, 2, 2, &w);
        assert_eq!(r.stats.total_iterations, 1, "{approach}");
    }
}

#[test]
fn big_cluster_small_loop() {
    // More workers than iterations: nobody may execute twice, nobody
    // may deadlock.
    let w = Synthetic::constant(7, 5);
    let r = live(Kind::SS, Kind::SS, Approach::MpiMpi, 4, 4, &w);
    assert_eq!(r.stats.total_iterations, 7);
}
