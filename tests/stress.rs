//! Stress tests at paper-like scale on the real-thread runtime. These
//! launch hundreds of OS threads and are `#[ignore]`d by default; run
//! with `cargo test --release -- --ignored` when validating a change to
//! the runtime or the executors.

use hdls::prelude::*;
use hier::live::serial_checksum;

#[test]
#[ignore = "256 threads; run with --ignored in release mode"]
fn full_paper_scale_live_mpi_mpi() {
    // 16 nodes x 16 ranks = 256 threads, as in the paper's largest runs.
    let w = Synthetic::uniform(100_000, 1, 50, 11);
    let serial = serial_checksum(&w);
    let r = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::GSS)
        .approach(Approach::MpiMpi)
        .nodes(16)
        .workers_per_node(16)
        .build()
        .run_live(&w);
    assert_eq!(r.checksum, serial);
    assert_eq!(r.stats.total_iterations, 100_000);
}

#[test]
#[ignore = "many threads; run with --ignored in release mode"]
fn full_paper_scale_live_mpi_openmp() {
    let w = Synthetic::uniform(100_000, 1, 50, 12);
    let serial = serial_checksum(&w);
    let r = HierSchedule::builder()
        .inter(Kind::FAC2)
        .intra(Kind::GSS)
        .approach(Approach::MpiOpenMp)
        .nodes(16)
        .workers_per_node(16)
        .build()
        .run_live(&w);
    assert_eq!(r.checksum, serial);
}

#[test]
#[ignore = "repeated runs; run with --ignored"]
fn live_mpi_mpi_repeated_runs_stable() {
    // The SS + tiny-loop combination maximises lock churn and
    // termination races; hammer it.
    let w = Synthetic::uniform(500, 1, 20, 13);
    let serial = serial_checksum(&w);
    for round in 0..50 {
        let r = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::SS)
            .approach(Approach::MpiMpi)
            .nodes(4)
            .workers_per_node(4)
            .build()
            .run_live(&w);
        assert_eq!(r.checksum, serial, "round {round}");
    }
}

#[test]
#[ignore = "real Mandelbrot kernel at scale; run with --ignored"]
fn mandelbrot_quick_live_matches_serial() {
    let m = Mandelbrot::quick();
    let serial = serial_checksum(&m);
    let r = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::STATIC)
        .approach(Approach::MpiMpi)
        .nodes(4)
        .workers_per_node(8)
        .build()
        .run_live(&m);
    assert_eq!(r.checksum, serial);
    assert_eq!(r.stats.total_iterations, m.n_iters());
}

#[test]
#[ignore = "master-worker protocols under thread pressure; run with --ignored"]
fn master_worker_scale_live() {
    let w = Synthetic::uniform(50_000, 1, 30, 14);
    let serial = serial_checksum(&w);
    let s = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::GSS)
        .nodes(8)
        .workers_per_node(8)
        .build();
    let hier_mw = s.run_live_master_worker(&w);
    assert_eq!(hier_mw.checksum, serial);
    let flat = s.run_live_flat_master_worker(&w);
    assert_eq!(flat.checksum, serial);
}
