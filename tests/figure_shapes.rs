//! Qualitative figure-shape tests: the orderings the paper's evaluation
//! reports must hold on reduced instances of the same workloads. These
//! are the guardrails that keep the reproduction honest when anything
//! in the executors or cost models changes.

use hdls::prelude::*;

/// A reduced boundary-zoom Mandelbrot with the paper instance's cost
/// structure (sparse heavy clusters, shuffled tiles, mean pixel cost a
/// few times a lock acquisition).
fn mandelbrot_small() -> CostTable {
    CostTable::build(&Mandelbrot::quick())
}

fn run(table: &CostTable, inter: Kind, intra: Kind, approach: Approach, nodes: u32) -> f64 {
    HierSchedule::builder()
        .inter(inter)
        .intra(intra)
        .approach(approach)
        .nodes(nodes)
        .workers_per_node(16)
        .build()
        .simulate(table)
        .seconds()
}

#[test]
fn fig4_static_inter_approaches_equal_except_ss() {
    let t = mandelbrot_small();
    for intra in [Kind::STATIC, Kind::GSS] {
        let mm = run(&t, Kind::STATIC, intra, Approach::MpiMpi, 4);
        let mo = run(&t, Kind::STATIC, intra, Approach::MpiOpenMp, 4);
        let ratio = mm / mo;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "STATIC+{intra}: expected parity, got {mm:.3} vs {mo:.3}"
        );
    }
}

#[test]
fn fig4_ss_intra_mpi_mpi_poorest() {
    let t = mandelbrot_small();
    let mm = run(&t, Kind::STATIC, Kind::SS, Approach::MpiMpi, 4);
    let mo = run(&t, Kind::STATIC, Kind::SS, Approach::MpiOpenMp, 4);
    assert!(mm > 1.5 * mo, "MPI+MPI with SS intra must be clearly poorest: {mm:.3} vs {mo:.3}");
    // ...and poorer than every other MPI+MPI combination.
    for intra in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
        let other = run(&t, Kind::STATIC, intra, Approach::MpiMpi, 4);
        assert!(mm > other, "SS ({mm:.3}) must beat {intra} ({other:.3}) in badness");
    }
}

#[test]
fn fig5_gss_static_mpi_mpi_wins_at_small_scale() {
    let t = mandelbrot_small();
    let mm = run(&t, Kind::GSS, Kind::STATIC, Approach::MpiMpi, 2);
    let mo = run(&t, Kind::GSS, Kind::STATIC, Approach::MpiOpenMp, 2);
    assert!(
        mo > 1.15 * mm,
        "GSS+STATIC at 2 nodes: MPI+OpenMP ({mo:.3}) must clearly exceed MPI+MPI ({mm:.3})"
    );
}

#[test]
fn fig5_to_7_dynamic_inter_static_intra_mpi_mpi_never_slower() {
    let t = mandelbrot_small();
    for inter in [Kind::GSS, Kind::TSS, Kind::FAC2] {
        for nodes in [2, 4, 8, 16] {
            let mm = run(&t, inter, Kind::STATIC, Approach::MpiMpi, nodes);
            let mo = run(&t, inter, Kind::STATIC, Approach::MpiOpenMp, nodes);
            assert!(
                mm <= mo * 1.02,
                "{inter}+STATIC @{nodes}: MPI+MPI {mm:.3} vs MPI+OpenMP {mo:.3}"
            );
        }
    }
}

#[test]
fn scaling_reduces_time() {
    let t = mandelbrot_small();
    for approach in Approach::ALL {
        let small = run(&t, Kind::GSS, Kind::GSS, approach, 2);
        let big = run(&t, Kind::GSS, Kind::GSS, approach, 16);
        assert!(big < small, "{approach}: {big:.3} !< {small:.3}");
    }
}

#[test]
fn psia_less_imbalanced_and_approaches_closer() {
    // PSIA (balanced, fine-grained) shows smaller approach differences
    // than Mandelbrot for GSS+STATIC — the paper's PSIA observation.
    let psia = CostTable::build(&workloads::PsiaStream::new(Psia::tiny(), 64, 0.1));
    let mandel = mandelbrot_small();
    let gap = |t: &CostTable| {
        let mm = run(t, Kind::GSS, Kind::STATIC, Approach::MpiMpi, 2);
        let mo = run(t, Kind::GSS, Kind::STATIC, Approach::MpiOpenMp, 2);
        mo / mm
    };
    let psia_gap = gap(&psia);
    let mandel_gap = gap(&mandel);
    assert!(
        psia_gap < mandel_gap,
        "PSIA approach gap ({psia_gap:.3}) must be smaller than Mandelbrot's ({mandel_gap:.3})"
    );
}

#[test]
fn ablation_lock_polling_drives_the_ss_pathology() {
    // With the polling penalty disabled, the X+SS MPI+MPI slowdown
    // shrinks substantially — the paper's explanation (lock-attempt
    // message storms) is what our model encodes.
    let t = mandelbrot_small();
    let with_poll = run(&t, Kind::STATIC, Kind::SS, Approach::MpiMpi, 4);
    let machine = MachineParams::default().without_lock_polling();
    let without_poll = HierSchedule::builder()
        .inter(Kind::STATIC)
        .intra(Kind::SS)
        .approach(Approach::MpiMpi)
        .nodes(4)
        .workers_per_node(16)
        .machine(machine)
        .build()
        .simulate(&t)
        .seconds();
    assert!(with_poll > 1.3 * without_poll, "polling on {with_poll:.3} vs off {without_poll:.3}");
}

#[test]
fn deterministic_across_repeats() {
    let t = mandelbrot_small();
    let a = run(&t, Kind::FAC2, Kind::GSS, Approach::MpiMpi, 8);
    let b = run(&t, Kind::FAC2, Kind::GSS, Approach::MpiMpi, 8);
    assert_eq!(a, b);
}
